//! Linear-scaling quantization with strict error control (paper Sec. IV-A).
//!
//! The quantizer maps a prediction residual to an integer index:
//! `q = round((d − p) / 2ε)`, reconstructing `d' = p + 2qε` with
//! `|d − d'| ≤ ε` guaranteed. Residuals whose index would fall outside the
//! quantizer radius — or whose reconstruction fails the bound check after
//! rounding to the storage type — are *unpredictable* (paper Sec. V-C2): the
//! exact value is stored in a side channel and the index array records the
//! reserved [`UNPRED`] label.

#![warn(missing_docs)]

use qip_tensor::Scalar;

/// Reserved quantization index labelling unpredictable data points.
///
/// Real SZ3 reserves index 0 of the shifted range; we keep indices signed and
/// centered (as the paper's figures do) and reserve a sentinel instead.
pub const UNPRED: i32 = i32::MIN;

/// Outcome of quantizing one data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Quantized<T: Scalar> {
    /// Within range: the index to encode and the reconstructed value the
    /// decompressor will produce (must overwrite the working buffer).
    Pred {
        /// Quantization index to encode.
        index: i32,
        /// Reconstructed value (as the decompressor will see it).
        recon: T,
    },
    /// Out of range: store the exact value in the unpredictable side channel.
    Unpred,
}

/// Linear-scaling quantizer with a fixed absolute error bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearQuantizer {
    eb: f64,
    radius: i32,
}

impl LinearQuantizer {
    /// Default index radius (SZ3's `quantization_bin_total/2` default).
    pub const DEFAULT_RADIUS: i32 = 32768;

    /// Quantizer with absolute bound `eb > 0` and the default radius.
    pub fn new(eb: f64) -> Self {
        Self::with_radius(eb, Self::DEFAULT_RADIUS)
    }

    /// Quantizer with an explicit radius (indices satisfy `|q| < radius`).
    pub fn with_radius(eb: f64, radius: i32) -> Self {
        Self::try_with_radius(eb, radius)
            .expect("error bound must be positive and finite, radius > 1")
    }

    /// Fallible constructor for parameters read from an untrusted stream:
    /// returns `None` instead of panicking when the bound is non-positive or
    /// non-finite (e.g. a corrupted per-level ε) or the radius is degenerate.
    pub fn try_new(eb: f64) -> Option<Self> {
        Self::try_with_radius(eb, Self::DEFAULT_RADIUS)
    }

    /// Fallible variant of [`LinearQuantizer::with_radius`].
    pub fn try_with_radius(eb: f64, radius: i32) -> Option<Self> {
        if eb > 0.0 && eb.is_finite() && radius > 1 {
            Some(LinearQuantizer { eb, radius })
        } else {
            None
        }
    }

    /// The absolute error bound.
    #[inline]
    pub fn error_bound(&self) -> f64 {
        self.eb
    }

    /// The index radius.
    #[inline]
    pub fn radius(&self) -> i32 {
        self.radius
    }

    /// Quantize `d` against prediction `pred`.
    ///
    /// The bound is verified on the value *as stored* (after rounding to `T`),
    /// so `f32` fields keep the guarantee even when `2qε` is not representable.
    #[inline]
    pub fn quantize<T: Scalar>(&self, d: T, pred: f64) -> Quantized<T> {
        let df = d.to_f64();
        if !df.is_finite() {
            return Quantized::Unpred;
        }
        let diff = df - pred;
        let q = (diff / (2.0 * self.eb)).round();
        if q.abs() >= self.radius as f64 {
            return Quantized::Unpred;
        }
        let q = q as i32;
        let recon = T::from_f64(pred + 2.0 * q as f64 * self.eb);
        if (recon.to_f64() - df).abs() > self.eb {
            return Quantized::Unpred;
        }
        Quantized::Pred { index: q, recon }
    }

    /// Reconstruct a value from its prediction and index (decompression side).
    #[inline]
    pub fn recover<T: Scalar>(&self, pred: f64, index: i32) -> T {
        T::from_f64(pred + 2.0 * index as f64 * self.eb)
    }

    /// Fraction of the error bound a pointwise error consumes (`|err| / ε`),
    /// the error-budget utilization statistic behind qip-inspect's margin
    /// histograms. A value of 1.0 means the bound was met exactly; values
    /// above 1.0 mark a bound violation. Non-finite errors map to infinity.
    #[inline]
    pub fn margin_fraction(&self, err: f64) -> f64 {
        if !err.is_finite() || self.eb <= 0.0 {
            return f64::INFINITY;
        }
        err.abs() / self.eb
    }

    /// Branchless chunked quantization over up to 64 lanes.
    ///
    /// Computes every lane's index and reconstruction *unconditionally* — no
    /// per-point predictable/unpredictable branch — and reports out-of-range
    /// lanes through the returned bitmap instead (bit `j` set ⇔ lane `j` is
    /// unpredictable). For predictable lanes the emitted index and
    /// reconstruction are exactly what [`LinearQuantizer::quantize`] produces;
    /// for unpredictable lanes `idx`/`recon` hold don't-care values the caller
    /// must patch (the engine writes [`UNPRED`] and the exact value). The
    /// arithmetic mirrors the scalar path expression-for-expression so the two
    /// are bit-identical — pinned by the `kernel_equivalence` suite.
    ///
    /// All four slices must share a length `≤ 64`.
    #[inline]
    pub fn quantize_lanes<T: Scalar>(
        &self,
        data: &[T],
        pred: &[f64],
        idx: &mut [i32],
        recon: &mut [T],
    ) -> u64 {
        let lanes = data.len();
        debug_assert!(lanes <= 64, "at most 64 lanes per bitmap word");
        assert!(pred.len() == lanes && idx.len() == lanes && recon.len() == lanes);
        let two_eb = 2.0 * self.eb;
        let radius_f = self.radius as f64;
        let mut unpred = 0u64;
        for j in 0..lanes {
            let df = data[j].to_f64();
            let q = ((df - pred[j]) / two_eb).round();
            // Saturating cast; NaN → 0. Only read when the lane is predictable,
            // where it equals the scalar path's in-radius `q as i32`.
            let qi = q as i32;
            let r = T::from_f64(pred[j] + 2.0 * qi as f64 * self.eb);
            let out = !df.is_finite() | (q.abs() >= radius_f) | ((r.to_f64() - df).abs() > self.eb);
            unpred |= (out as u64) << j;
            idx[j] = qi;
            recon[j] = r;
        }
        unpred
    }
}

/// A reusable bank of per-level quantizers.
///
/// Interpolation engines build one [`LinearQuantizer`] per interpolation level
/// on every call; a bank owned by a compression context keeps the backing
/// allocation alive across calls. `clear` + `push` rebuilds the bank for the
/// next field without releasing capacity.
#[derive(Debug, Default, Clone)]
pub struct QuantizerBank {
    levels: Vec<LinearQuantizer>,
}

impl QuantizerBank {
    /// Create an empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Remove all quantizers, keeping the allocation.
    pub fn clear(&mut self) {
        self.levels.clear();
    }

    /// Append the quantizer for the next level.
    pub fn push(&mut self, q: LinearQuantizer) {
        self.levels.push(q);
    }

    /// The quantizers currently in the bank, coarsest level first.
    pub fn as_slice(&self) -> &[LinearQuantizer] {
        &self.levels
    }

    /// Number of quantizers in the bank.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// True when the bank holds no quantizers.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Emit the bank's per-level error bounds into the active trace session
    /// (`quant.eb.l{level}` values). No-op unless capture is live.
    pub fn trace_levels(&self) {
        if !qip_trace::enabled() {
            return;
        }
        for (level, q) in self.levels.iter().enumerate() {
            qip_trace::value_owned(format!("quant.eb.l{level}"), q.error_bound());
        }
        qip_trace::counter("quant.bank_builds", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_clear_keeps_capacity() {
        let mut bank = QuantizerBank::new();
        assert!(bank.is_empty());
        for level in 1..=4usize {
            bank.push(LinearQuantizer::new(1e-3 * level as f64));
        }
        assert_eq!(bank.len(), 4);
        assert_eq!(bank.as_slice()[0].error_bound(), 1e-3);
        bank.clear();
        assert!(bank.is_empty());
        assert!(bank.levels.capacity() >= 4);
    }

    #[test]
    fn exact_prediction_gives_zero_index() {
        let q = LinearQuantizer::new(0.1);
        match q.quantize(5.0f64, 5.0) {
            Quantized::Pred { index, recon } => {
                assert_eq!(index, 0);
                assert!((recon - 5.0).abs() <= 0.1);
            }
            Quantized::Unpred => panic!("should be predictable"),
        }
    }

    #[test]
    fn bound_enforced_roundtrip() {
        let quant = LinearQuantizer::new(1e-3);
        let preds = [0.0, 1.0, -2.5, 100.0];
        let offsets = [0.0, 1e-4, -1e-4, 0.01, -0.01, 0.5, -0.5];
        for &p in &preds {
            for &o in &offsets {
                let d = p + o;
                if let Quantized::Pred { index, recon } = quant.quantize(d, p) {
                    assert!((recon - d).abs() <= 1e-3 + 1e-12, "d={d} p={p}");
                    // recover() must agree with the compression-side recon.
                    let r2: f64 = quant.recover(p, index);
                    assert_eq!(r2, recon);
                }
            }
        }
    }

    #[test]
    fn out_of_radius_is_unpredictable() {
        let q = LinearQuantizer::with_radius(1e-3, 16);
        // |q| would be ~500 >> 16.
        assert_eq!(q.quantize(1.0f64, 0.0), Quantized::Unpred);
        // Just inside: q = 15.
        assert!(matches!(q.quantize(15.0 * 2e-3, 0.0), Quantized::Pred { index: 15, .. }));
        // At the radius: rejected (strict inequality).
        assert_eq!(q.quantize(16.0 * 2e-3, 0.0), Quantized::Unpred);
    }

    #[test]
    fn nan_and_inf_are_unpredictable() {
        let q = LinearQuantizer::new(0.5);
        assert_eq!(q.quantize(f64::NAN, 0.0), Quantized::Unpred);
        assert_eq!(q.quantize(f64::INFINITY, 0.0), Quantized::Unpred);
    }

    #[test]
    fn f32_storage_rounding_still_bounded() {
        // A bound so tight that f32 rounding matters: the quantizer must
        // either meet the bound on the f32 value or declare Unpred.
        let quant = LinearQuantizer::new(1e-7);
        let d: f32 = 123.456;
        match quant.quantize(d, 123.0) {
            Quantized::Pred { recon, .. } => {
                assert!((recon as f64 - d as f64).abs() <= 1e-7);
            }
            Quantized::Unpred => {} // legitimate outcome
        }
    }

    #[test]
    fn negative_indices() {
        let quant = LinearQuantizer::new(0.5);
        match quant.quantize(-3.0f64, 0.0) {
            Quantized::Pred { index, recon } => {
                assert_eq!(index, -3);
                assert!((recon - -3.0).abs() <= 0.5);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn rounds_to_nearest_bin() {
        let quant = LinearQuantizer::new(1.0); // bins of width 2
        for (d, want) in [(0.9f64, 0), (1.1, 1), (2.9, 1), (3.1, 2), (-1.1, -1)] {
            match quant.quantize(d, 0.0) {
                Quantized::Pred { index, .. } => assert_eq!(index, want, "d={d}"),
                _ => panic!(),
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_bound_rejected() {
        let _ = LinearQuantizer::new(0.0);
    }

    #[test]
    fn lanes_match_scalar_quantize() {
        // Differential sweep: the branchless lane kernel must agree with the
        // scalar reference on bitmap, indices, and reconstructions — across
        // normal points, radius edges, non-finite values, and tight-f32 cases.
        let quants =
            [LinearQuantizer::new(1e-3), LinearQuantizer::with_radius(0.5, 4), LinearQuantizer::new(1e-7)];
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for quant in quants {
            for trial in 0..32 {
                let lanes = (trial % 64) + 1;
                let mut data = Vec::new();
                let mut pred = Vec::new();
                for j in 0..lanes {
                    let p = ((next() % 2000) as f64 - 1000.0) * 0.01;
                    let d = match j % 7 {
                        0 => f64::NAN,
                        1 => f64::INFINITY,
                        2 => p + quant.radius() as f64 * 2.0 * quant.error_bound(),
                        _ => p + ((next() % 1000) as f64 - 500.0) * quant.error_bound(),
                    };
                    data.push(d);
                    pred.push(p);
                }
                let mut idx = vec![0i32; lanes];
                let mut recon = vec![0f64; lanes];
                let mask = quant.quantize_lanes(&data, &pred, &mut idx, &mut recon);
                for j in 0..lanes {
                    match quant.quantize(data[j], pred[j]) {
                        Quantized::Pred { index, recon: r } => {
                            assert_eq!(mask >> j & 1, 0, "lane {j} wrongly unpred");
                            assert_eq!(idx[j], index, "lane {j} index");
                            assert_eq!(recon[j].to_bits(), r.to_bits(), "lane {j} recon");
                        }
                        Quantized::Unpred => {
                            assert_eq!(mask >> j & 1, 1, "lane {j} wrongly pred");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn lanes_match_scalar_quantize_f32() {
        // f32 storage rounding interacts with the bound check; diff that too.
        let quant = LinearQuantizer::new(1e-6);
        let data: Vec<f32> = (0..64).map(|i| 123.456 + i as f32 * 1e-6).collect();
        let pred: Vec<f64> = (0..64).map(|i| 123.456 + (i % 3) as f64 * 1e-7).collect();
        let mut idx = vec![0i32; 64];
        let mut recon = vec![0f32; 64];
        let mask = quant.quantize_lanes(&data, &pred, &mut idx, &mut recon);
        for j in 0..64 {
            match quant.quantize(data[j], pred[j]) {
                Quantized::Pred { index, recon: r } => {
                    assert_eq!(mask >> j & 1, 0);
                    assert_eq!(idx[j], index);
                    assert_eq!(recon[j].to_bits(), r.to_bits());
                }
                Quantized::Unpred => assert_eq!(mask >> j & 1, 1),
            }
        }
    }

    #[test]
    fn unpred_sentinel_outside_radius() {
        // No legal index can ever equal the sentinel (checked against the
        // runtime radius so the assertion isn't constant-folded away).
        let quant = LinearQuantizer::new(1.0);
        assert!(UNPRED < -quant.radius());
    }
}

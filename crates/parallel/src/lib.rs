//! Block-parallel compression wrapper.
//!
//! The paper's Table I lists GPU support (cuSZ/cuSZ-i-style, refs \[21\]/\[22\])
//! as a distinguishing feature of MGARD and QoZ, and its Sec. VI-E transfer
//! experiment relies on embarrassingly parallel slice decomposition. This
//! crate provides the CPU analog of that chunked execution model: a generic
//! wrapper that splits a field into independent rectangular blocks,
//! compresses them concurrently with rayon, and concatenates the streams.
//!
//! Trade-offs are exactly the ones the GPU compressors accept: block
//! boundaries cut prediction context, so ratios drop slightly versus the
//! monolithic compressor, in exchange for near-linear scaling across cores.
//! The error bound is resolved against the *full* field before the split, so
//! `Rel` bounds mean the same thing as in the wrapped compressor.

#![warn(missing_docs)]

use qip_codec::{ByteReader, ByteWriter};
use qip_core::{CompressError, Compressor, ErrorBound};
use qip_tensor::{Field, Scalar, Shape};
use rayon::prelude::*;

/// Stream magic for the block-parallel wrapper.
const MAGIC_PAR: u8 = 0x90;
/// Stream format version.
const FMT_VERSION: u8 = 1;

/// Smallest accepted block edge: below this, block boundaries destroy so much
/// prediction context that ratios collapse, so construction refuses outright.
pub const MIN_BLOCK: usize = 8;

/// The fixed grid of edge-`edge` blocks over a field's dims — the one
/// block/tile geometry shared by [`BlockParallel`] and the tiled container
/// (`qip-container`), so both agree on origin order, clipping, and counts.
///
/// Origins enumerate in row-major order (last axis fastest), matching
/// [`qip_tensor::Shape::blocks`]; edge blocks are clipped to the field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileGrid {
    shape: Shape,
    edge: usize,
}

impl TileGrid {
    /// The grid of `edge`-sized blocks over `dims`.
    ///
    /// Returns [`CompressError::Unsupported`] when `edge` is below
    /// [`MIN_BLOCK`] (same rationale as [`BlockParallel::new`]); dims must be
    /// 1–4-D like every workspace shape.
    pub fn new(dims: &[usize], edge: usize) -> Result<Self, CompressError> {
        if edge < MIN_BLOCK {
            return Err(CompressError::Unsupported(
                "block edge below 8 per axis destroys prediction context",
            ));
        }
        if dims.is_empty() || dims.len() > 4 {
            return Err(CompressError::WrongFormat("dimensionality out of range"));
        }
        Ok(TileGrid { shape: Shape::new(dims), edge })
    }

    /// Block edge length per axis (edge blocks are clipped).
    pub fn edge(&self) -> usize {
        self.edge
    }

    /// The gridded field's dims.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Block origins in canonical (row-major, last-axis-fastest) order.
    pub fn origins(&self) -> qip_tensor::BlockIter {
        self.shape.blocks(self.edge)
    }

    /// Total number of blocks (`∏ ceil(d / edge)`; 0 when any dim is 0).
    pub fn count(&self) -> usize {
        if self.shape.is_empty() {
            return 0;
        }
        self.shape.dims().iter().map(|&d| d.div_ceil(self.edge)).product()
    }

    /// The clipped extent of the block at `origin`.
    pub fn clipped_extent(&self, origin: &[usize]) -> Vec<usize> {
        origin
            .iter()
            .zip(self.shape.dims())
            .map(|(&o, &d)| self.edge.min(d.saturating_sub(o)))
            .collect()
    }
}

/// A compressor wrapper that processes independent blocks in parallel.
#[derive(Debug, Clone)]
pub struct BlockParallel<C> {
    inner: C,
    block: usize,
}

impl<C> BlockParallel<C> {
    /// Wrap `inner`, splitting fields into blocks of `block` per axis
    /// (clipped at field edges). 64 matches the GPU compressors' chunking.
    ///
    /// Returns [`CompressError::Unsupported`] when `block` is below
    /// [`MIN_BLOCK`], so callers wiring a user-supplied block size get a
    /// typed error instead of a panic.
    pub fn new(inner: C, block: usize) -> Result<Self, CompressError> {
        if block < MIN_BLOCK {
            return Err(CompressError::Unsupported(
                "block edge below 8 per axis destroys prediction context",
            ));
        }
        Ok(BlockParallel { inner, block })
    }

    /// The wrapped compressor.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Block edge length.
    pub fn block_size(&self) -> usize {
        self.block
    }
}

impl<T, C> Compressor<T> for BlockParallel<C>
where
    T: Scalar,
    C: Compressor<T> + Sync,
{
    fn name(&self) -> String {
        format!("{}∥{}", self.inner.name(), self.block)
    }

    fn compress(&self, field: &Field<T>, bound: ErrorBound) -> Result<Vec<u8>, CompressError> {
        let dims = field.shape().dims().to_vec();
        // Resolve the bound once against the whole field so every block
        // quantizes at the same absolute tolerance.
        let abs = bound.resolve(field).as_abs();

        let mut w = ByteWriter::with_capacity(field.len() / 4 + 64);
        w.put_u8(MAGIC_PAR);
        w.put_u8(FMT_VERSION);
        w.put_u8(T::BITS as u8);
        w.put_u8(dims.len() as u8);
        for &d in &dims {
            w.put_uvarint(d as u64);
        }
        w.put_uvarint(self.block as u64);
        if field.is_empty() {
            return Ok(qip_core::integrity::seal(w.finish()));
        }

        let grid = TileGrid::new(&dims, self.block)?;
        let origins: Vec<Vec<usize>> = grid.origins().collect();
        let extent = vec![self.block; dims.len()];
        let streams: Vec<Result<Vec<u8>, CompressError>> = origins
            .par_iter()
            .map(|origin| {
                let blk = field.subregion(origin, &extent);
                self.inner.compress(&blk, abs)
            })
            .collect();

        w.put_uvarint(streams.len() as u64);
        for s in streams {
            w.put_block(&s?);
        }
        Ok(qip_core::integrity::seal(w.finish()))
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Field<T>, CompressError> {
        let bytes = qip_core::integrity::check(bytes)?;
        let mut r = ByteReader::new(bytes);
        if r.get_u8()? != MAGIC_PAR {
            return Err(CompressError::WrongFormat("not a block-parallel stream"));
        }
        if r.get_u8()? != FMT_VERSION {
            return Err(CompressError::WrongFormat("unknown block-parallel version"));
        }
        if r.get_u8()? != T::BITS as u8 {
            return Err(CompressError::WrongFormat("scalar width mismatch"));
        }
        let ndim = r.get_u8()? as usize;
        if ndim == 0 || ndim > 4 {
            return Err(CompressError::WrongFormat("dimensionality out of range"));
        }
        let mut dims = Vec::with_capacity(ndim);
        let mut volume: u128 = 1;
        for _ in 0..ndim {
            let d = r.get_uvarint()? as usize;
            volume = volume.saturating_mul(d.max(1) as u128);
            dims.push(d);
        }
        if volume > (1u128 << 36) {
            return Err(CompressError::WrongFormat("implausible field volume"));
        }
        let block = r.get_uvarint()? as usize;
        if block < MIN_BLOCK {
            return Err(CompressError::WrongFormat("block size below minimum"));
        }
        let shape = Shape::new(&dims);
        if shape.is_empty() {
            return Ok(Field::zeros(shape));
        }

        let n_blocks = r.get_uvarint()? as usize;
        let grid = TileGrid::new(&dims, block)?;
        let origins: Vec<Vec<usize>> = grid.origins().collect();
        if origins.len() != n_blocks {
            return Err(CompressError::WrongFormat("block count mismatch"));
        }
        let mut payloads = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            payloads.push(r.get_block()?);
        }

        let blocks: Vec<Result<Field<T>, CompressError>> =
            payloads.par_iter().map(|p| self.inner.decompress(p)).collect();

        let mut out = Field::from_vec(shape.clone(), qip_core::try_zeroed_vec::<T>(shape.len())?)?;
        for (origin, blk) in origins.iter().zip(blocks) {
            let blk = blk?;
            // Defensive: the block shape must match its clipped extent.
            for (a, (&o, &e)) in origin.iter().zip(blk.shape().dims()).enumerate() {
                if o + e > dims[a] {
                    return Err(CompressError::WrongFormat("block exceeds field"));
                }
            }
            out.write_subregion(origin, &blk);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qip_core::QpConfig;
    use qip_sz3::Sz3;

    fn field(dims: &[usize]) -> Field<f32> {
        qip_data::Dataset::Miranda.generate_f32(0, dims)
    }

    #[test]
    fn roundtrip_bound_held() {
        let f = field(&[70, 50, 40]);
        let par = BlockParallel::new(Sz3::new().with_qp(QpConfig::best_fit()), 32).expect("valid block size");
        let bytes = par.compress(&f, ErrorBound::Rel(1e-3)).unwrap();
        let out = par.decompress(&bytes).unwrap();
        let abs = 1e-3 * f.value_range();
        assert!(qip_metrics_max_abs(&f, &out) <= abs * (1.0 + 1e-9));
    }

    fn qip_metrics_max_abs(a: &Field<f32>, b: &Field<f32>) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(&x, &y)| (x as f64 - y as f64).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn parallel_deterministic() {
        let f = field(&[64, 48, 33]);
        let par = BlockParallel::new(Sz3::new(), 32).expect("valid block size");
        let a = par.compress(&f, ErrorBound::Rel(1e-3)).unwrap();
        let b = par.compress(&f, ErrorBound::Rel(1e-3)).unwrap();
        assert_eq!(a, b, "parallel compression must be deterministic");
    }

    #[test]
    fn matches_serial_per_block_semantics() {
        // Each block decompresses to exactly what the inner compressor would
        // produce for that block at the same absolute bound.
        let f = field(&[40, 40, 20]);
        let inner = Sz3::new();
        let par = BlockParallel::new(inner.clone(), 20).expect("valid block size");
        let abs = ErrorBound::Abs(ErrorBound::Rel(1e-3).absolute(f.value_range()));
        let bytes = par.compress(&f, ErrorBound::Rel(1e-3)).unwrap();
        let whole = par.decompress(&bytes).unwrap();
        for origin in f.shape().blocks(20) {
            let blk = f.subregion(&origin, &[20, 20, 20]);
            let direct: Field<f32> =
                inner.decompress(&inner.compress(&blk, abs).unwrap()).unwrap();
            let got = whole.subregion(&origin, &[20, 20, 20]);
            assert_eq!(direct.as_slice(), got.as_slice(), "origin {origin:?}");
        }
    }

    #[test]
    fn edge_blocks_clipped() {
        // Dims not divisible by the block size.
        let f = field(&[37, 29, 21]);
        let par = BlockParallel::new(Sz3::new(), 16).expect("valid block size");
        let bytes = par.compress(&f, ErrorBound::Rel(1e-2)).unwrap();
        let out: Field<f32> = par.decompress(&bytes).unwrap();
        assert_eq!(out.shape(), f.shape());
    }

    #[test]
    fn small_field_single_block() {
        let f = field(&[10, 10, 10]);
        let par = BlockParallel::new(Sz3::new(), 64).expect("valid block size");
        let bytes = par.compress(&f, ErrorBound::Rel(1e-3)).unwrap();
        let out: Field<f32> = par.decompress(&bytes).unwrap();
        assert_eq!(out.shape(), f.shape());
    }

    #[test]
    fn truncation_and_foreign_rejected() {
        let f = field(&[32, 32, 16]);
        let par = BlockParallel::new(Sz3::new(), 16).expect("valid block size");
        let bytes = par.compress(&f, ErrorBound::Rel(1e-3)).unwrap();
        for cut in [0, 3, bytes.len() / 2] {
            let r: Result<Field<f32>, _> = par.decompress(&bytes[..cut]);
            assert!(r.is_err(), "cut {cut}");
        }
        // A plain SZ3 stream is not a block-parallel stream.
        let plain = Sz3::new().compress(&f, ErrorBound::Rel(1e-3)).unwrap();
        let r: Result<Field<f32>, _> = par.decompress(&plain);
        assert!(r.is_err());
    }

    #[test]
    fn ratio_cost_is_modest() {
        // Block boundaries cost some ratio but not a collapse.
        let f = field(&[80, 80, 40]);
        let mono = Sz3::new();
        let par = BlockParallel::new(Sz3::new(), 40).expect("valid block size");
        let a = mono.compress(&f, ErrorBound::Rel(1e-3)).unwrap().len();
        let b = par.compress(&f, ErrorBound::Rel(1e-3)).unwrap().len();
        assert!(
            (b as f64) < a as f64 * 1.6,
            "block-parallel ratio cost too large: {a} -> {b}"
        );
    }

    #[test]
    fn tiny_blocks_rejected_with_typed_error() {
        for bad in [0, 1, 4, MIN_BLOCK - 1] {
            match BlockParallel::new(Sz3::new(), bad) {
                Err(CompressError::Unsupported(msg)) => {
                    assert!(msg.contains("block edge"), "{msg}")
                }
                other => panic!("block {bad}: expected Unsupported, got {other:?}"),
            }
        }
        // The boundary itself is accepted.
        let ok = BlockParallel::new(Sz3::new(), MIN_BLOCK).expect("MIN_BLOCK is valid");
        assert_eq!(ok.block_size(), MIN_BLOCK);
    }

    #[test]
    fn tile_grid_counts_clips_and_orders() {
        let grid = TileGrid::new(&[37, 29], 16).unwrap();
        let origins: Vec<_> = grid.origins().collect();
        assert_eq!(origins.len(), grid.count());
        assert_eq!(grid.count(), 3 * 2);
        assert_eq!(origins[0], vec![0, 0]);
        assert_eq!(origins[1], vec![0, 16]); // last axis fastest
        assert_eq!(grid.clipped_extent(&[32, 16]), vec![5, 13]);
        assert_eq!(grid.clipped_extent(&[0, 0]), vec![16, 16]);
        // Degenerate and invalid grids.
        assert_eq!(TileGrid::new(&[0, 10], 8).unwrap().count(), 0);
        assert!(TileGrid::new(&[10, 10], MIN_BLOCK - 1).is_err());
    }

    #[test]
    fn tile_grid_matches_block_parallel_geometry() {
        // The wrapper and the grid must agree on the block decomposition —
        // qip-container leans on this equivalence for its tile index.
        let f = field(&[37, 29, 21]);
        let grid = TileGrid::new(f.shape().dims(), 16).unwrap();
        let from_shape: Vec<_> = f.shape().blocks(16).collect();
        let from_grid: Vec<_> = grid.origins().collect();
        assert_eq!(from_shape, from_grid);
        for o in &from_grid {
            let blk = f.subregion(o, &[16, 16, 16]);
            assert_eq!(blk.shape().dims(), grid.clipped_extent(o).as_slice());
        }
    }
}

//! Deterministic fault injection for compressed streams.
//!
//! Untrusted-stream robustness is only testable if failures reproduce: every
//! corruption here is derived from a single `u64` seed through a tiny
//! xorshift generator, so a failing case can be replayed exactly from the
//! seed printed in the test assertion — no corpus files, no external fuzzer.
//!
//! Two entry points cover the two layers of the decode stack:
//!
//! - [`corrupt`] damages the raw stream (including the CRC32 integrity
//!   trailer added by `qip_core::integrity`). Every such stream must be
//!   rejected by `decompress` — in practice at the trailer check.
//! - [`corrupt_resealed`] damages only the payload and then recomputes a
//!   *valid* trailer. These streams get past the integrity gate and exercise
//!   the parsing and allocation hardening deep inside each decoder; decoding
//!   may succeed or fail, but must never panic, abort, or over-allocate.

#![warn(missing_docs)]

use qip_core::integrity;

/// Replay a failing operation inside a fresh trace session and render the
/// per-stage report, so a corruption-suite failure message carries the
/// pipeline trace next to its repro line. Panics inside `f` are caught (the
/// session always closes and capture switches back off) and folded into the
/// returned text instead of propagating.
///
/// Without the `trace` feature compiled into the workspace the replay still
/// runs — exercising the same code path the failure took — but the report is
/// empty and the text says how to get a real one.
pub fn trace_replay<R>(f: impl FnOnce() -> R) -> String {
    let (result, report) =
        qip_trace::with_session(|| std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)));
    let mut out = String::new();
    if let Err(payload) = result {
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("non-string panic payload");
        out.push_str(&format!("replay panicked: {msg}\n"));
    }
    if qip_trace::compiled() {
        out.push_str("stage trace of the failing run:\n");
        out.push_str(&report.render());
    } else {
        out.push_str(
            "(rebuild with `--features qip-fault/trace` for a stage trace of the failing run)\n",
        );
    }
    out
}

/// Feed one observed decode rejection into the attached telemetry hub's
/// flight recorder (no-op when no hub is attached). The record's outcome
/// carries both the decoder's error and the fault's repro line, so a fleet
/// incident can be replayed from the JSONL dump alone.
pub fn record_rejection(fault: &Fault, compressor: &str, error: &str) {
    if !qip_telemetry::active() {
        return;
    }
    qip_telemetry::record_fault(compressor, "decompress", &format!("{error} [{fault}]"));
}

/// Minimal xorshift64* generator: deterministic, dependency-free, and good
/// enough to scatter corruption positions. Not for cryptography or sampling.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Generator seeded with `seed`. The seed is scrambled splitmix-style so
    /// adjacent seeds diverge immediately, and zero (xorshift's fixed point)
    /// is remapped.
    pub fn new(seed: u64) -> Self {
        let mut s = seed ^ 0x9E37_79B9_7F4A_7C15;
        s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        s ^= s >> 31;
        XorShift64 { state: s.max(1) }
    }

    /// Next pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// A byte guaranteed to be nonzero (xor-ing it always changes the target).
    pub fn nonzero_byte(&mut self) -> u8 {
        ((self.next_u64() % 255) + 1) as u8
    }
}

/// The corruption families the harness draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Cut the stream short at a seeded position.
    Truncate,
    /// Flip a single bit.
    BitFlip,
    /// Flip 2–8 bits at independent positions.
    MultiBitFlip,
    /// Overwrite a short run of bytes with seeded garbage.
    ByteSplice,
    /// Copy one region of the stream over another (same length).
    DuplicateRegion,
    /// Damage a byte in the leading header region specifically.
    HeaderMutate,
}

const ALL_KINDS: [FaultKind; 6] = [
    FaultKind::Truncate,
    FaultKind::BitFlip,
    FaultKind::MultiBitFlip,
    FaultKind::ByteSplice,
    FaultKind::DuplicateRegion,
    FaultKind::HeaderMutate,
];

/// Record of an applied corruption; its `Display` form contains everything
/// needed to reproduce the stream (the seed and the entry point).
#[derive(Debug, Clone)]
pub struct Fault {
    /// The seed the corruption was derived from.
    pub seed: u64,
    /// Which corruption family fired.
    pub kind: FaultKind,
    /// Whether the trailer was recomputed after the damage.
    pub resealed: bool,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entry = if self.resealed { "corrupt_resealed" } else { "corrupt" };
        write!(
            f,
            "{:?} fault; reproduce with qip_fault::{}(stream, {:#018x})",
            self.kind, entry, self.seed
        )
    }
}

/// Bytes of the stream treated as "header region" by [`FaultKind::HeaderMutate`]:
/// enough to cover magic, scalar width, dimensionality, extents, and the
/// error bound in every workspace format.
const HEADER_REGION: usize = 40;

/// Apply the seeded corruption `kind` to `buf` in place (except truncation,
/// which returns the new length). Guarantees the result differs from the
/// original: positions and values are seeded, and a degenerate draw (e.g. a
/// duplicate of identical bytes) falls back to a bit flip.
fn apply_kind(buf: &mut Vec<u8>, kind: FaultKind, rng: &mut XorShift64) {
    let len = buf.len();
    if len == 0 {
        return;
    }
    let before = buf.clone();
    match kind {
        FaultKind::Truncate => {
            buf.truncate(rng.below(len));
            return; // always differs (shorter)
        }
        FaultKind::BitFlip => {
            let pos = rng.below(len);
            buf[pos] ^= 1 << rng.below(8);
        }
        FaultKind::MultiBitFlip => {
            for _ in 0..2 + rng.below(7) {
                let pos = rng.below(len);
                buf[pos] ^= 1 << rng.below(8);
            }
        }
        FaultKind::ByteSplice => {
            let start = rng.below(len);
            let run = 1 + rng.below(8.min(len - start));
            for b in &mut buf[start..start + run] {
                *b ^= rng.nonzero_byte();
            }
        }
        FaultKind::DuplicateRegion => {
            let run = 1 + rng.below(16.min(len));
            let src = rng.below(len - run + 1);
            let dst = rng.below(len - run + 1);
            let region: Vec<u8> = buf[src..src + run].to_vec();
            buf[dst..dst + run].copy_from_slice(&region);
        }
        FaultKind::HeaderMutate => {
            let pos = rng.below(HEADER_REGION.min(len));
            buf[pos] ^= rng.nonzero_byte();
        }
    }
    if *buf == before {
        // Degenerate draw (cancelling flips, identical duplicate): force a
        // change so "corrupted stream must not decode cleanly" stays testable.
        let pos = rng.below(len);
        buf[pos] ^= 1 << rng.below(8);
    }
}

/// Corrupt `stream` according to `seed`. The returned stream always differs
/// from the input; with the workspace's CRC32 trailer in place, decoding it
/// must return an error (and must never panic).
pub fn corrupt(stream: &[u8], seed: u64) -> (Vec<u8>, Fault) {
    let mut rng = XorShift64::new(seed);
    let kind = ALL_KINDS[rng.below(ALL_KINDS.len())];
    let mut buf = stream.to_vec();
    apply_kind(&mut buf, kind, &mut rng);
    (buf, Fault { seed, kind, resealed: false })
}

/// Corrupt the *payload* of a sealed stream and recompute a valid trailer, so
/// the damage reaches the decoder's parsing layers instead of stopping at the
/// CRC gate. Returns `None` if `stream` does not carry a valid trailer.
///
/// Decoding the result may legitimately succeed (the damage can be semantic
/// garbage that still parses) — the contract under test is the absence of
/// panics, aborts, and unbounded allocations.
pub fn corrupt_resealed(stream: &[u8], seed: u64) -> Option<(Vec<u8>, Fault)> {
    let payload = integrity::check(stream).ok()?;
    let mut rng = XorShift64::new(seed);
    let kind = ALL_KINDS[rng.below(ALL_KINDS.len())];
    let mut buf = payload.to_vec();
    apply_kind(&mut buf, kind, &mut rng);
    Some((integrity::seal(buf), Fault { seed, kind, resealed: true }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sealed_sample(n: usize) -> Vec<u8> {
        let payload: Vec<u8> = (0..n).map(|i| (i * 31 + 7) as u8).collect();
        integrity::seal(payload)
    }

    #[test]
    fn deterministic_per_seed() {
        let s = sealed_sample(300);
        for seed in 0..200u64 {
            let (a, fa) = corrupt(&s, seed);
            let (b, fb) = corrupt(&s, seed);
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(fa.kind, fb.kind);
        }
    }

    #[test]
    fn always_differs_from_original() {
        let s = sealed_sample(128);
        for seed in 0..2000u64 {
            let (c, f) = corrupt(&s, seed);
            assert_ne!(c, s, "seed {seed} ({f})");
        }
    }

    #[test]
    fn raw_corruption_fails_integrity_check() {
        let s = sealed_sample(256);
        for seed in 0..2000u64 {
            let (c, f) = corrupt(&s, seed);
            assert!(integrity::check(&c).is_err(), "seed {seed} ({f}) passed the CRC gate");
        }
    }

    #[test]
    fn resealed_corruption_passes_integrity_check() {
        let s = sealed_sample(256);
        for seed in 0..500u64 {
            let (c, f) = corrupt_resealed(&s, seed).expect("sample is sealed");
            let payload = integrity::check(&c).unwrap_or_else(|e| panic!("seed {seed} ({f}): {e}"));
            // Payload must differ from the original's payload.
            assert_ne!(payload, &s[..s.len() - integrity::TRAILER_LEN], "seed {seed} ({f})");
        }
    }

    #[test]
    fn all_kinds_reachable() {
        let s = sealed_sample(512);
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..200u64 {
            seen.insert(format!("{:?}", corrupt(&s, seed).1.kind));
        }
        assert_eq!(seen.len(), ALL_KINDS.len(), "kinds seen: {seen:?}");
    }

    #[test]
    fn unsealed_stream_cannot_be_resealed() {
        assert!(corrupt_resealed(&[1, 2, 3], 9).is_none());
    }

    #[test]
    fn display_carries_seed() {
        let s = sealed_sample(64);
        let (_, f) = corrupt(&s, 0xDEAD_BEEF);
        let msg = f.to_string();
        assert!(msg.contains("0x00000000deadbeef"), "{msg}");
        assert!(msg.contains("corrupt"), "{msg}");
    }

    #[test]
    fn trace_replay_survives_panics_and_mentions_tracing() {
        let text = trace_replay(|| panic!("boom at byte 42"));
        assert!(text.contains("boom at byte 42"), "{text}");
        let calm = trace_replay(|| 1 + 1);
        assert!(!calm.contains("panicked"), "{calm}");
        // Either a rendered report (trace feature on) or the rebuild hint.
        assert!(calm.contains("stage trace") || calm.contains("qip-fault/trace"), "{calm}");
    }

    #[test]
    fn tiny_and_empty_streams_handled() {
        for n in 0..8usize {
            let s = vec![0xAB; n];
            for seed in 0..50u64 {
                let _ = corrupt(&s, seed); // must not panic
            }
        }
    }
}

//! Workspace-wide corruption suite: every compressor in the bench registry
//! (the four interpolation-based compressors with QP off and on, plus the
//! three transform-based comparators, plus the block-parallel wrapper) must
//! reject damaged streams with an error — never a panic — under thousands of
//! seeded corruptions, and must survive corruptions that carry a valid
//! integrity trailer (reaching the deep parsing layers) without panicking.
//!
//! Any failure message prints the seed; replay it with
//! `qip_fault::corrupt(stream, seed)` / `corrupt_resealed(stream, seed)`.

use qip_registry::AnyCompressor;
use qip_core::{Compressor, ErrorBound, QpConfig};
use qip_parallel::BlockParallel;
use qip_sz3::Sz3;
use qip_tensor::Field;

/// Seeded corruptions per (compressor, stream) for the raw (CRC-gated) pass.
const RAW_SEEDS: u64 = 1000;
/// Seeded corruptions per (compressor, stream) for the resealed (deep) pass.
const RESEALED_SEEDS: u64 = 300;

fn registry() -> Vec<AnyCompressor> {
    AnyCompressor::registry()
}

fn small_fields() -> Vec<Field<f32>> {
    vec![
        qip_data::Dataset::Miranda.generate_f32(7, &[12, 13, 11]),
        qip_data::Dataset::SegSalt.generate_f32(3, &[16, 9, 8]),
    ]
}

#[test]
fn raw_corruptions_always_error() {
    for comp in registry() {
        let name = Compressor::<f32>::name(&comp);
        for (fi, field) in small_fields().iter().enumerate() {
            let stream = comp
                .compress(field, ErrorBound::Abs(1e-3))
                .unwrap_or_else(|e| panic!("{name}: compress failed: {e}"));
            for seed in 0..RAW_SEEDS {
                let (bad, fault) = qip_fault::corrupt(&stream, seed);
                let res: Result<Field<f32>, _> = comp.decompress(&bad);
                if res.is_ok() {
                    let trace = qip_fault::trace_replay(|| {
                        let _: Result<Field<f32>, _> = comp.decompress(&bad);
                    });
                    panic!(
                        "{name} on field {fi} decoded a corrupted stream cleanly: {fault}\n{trace}"
                    );
                }
            }
        }
    }
}

#[test]
fn resealed_corruptions_never_panic() {
    for comp in registry() {
        let name = Compressor::<f32>::name(&comp);
        for field in &small_fields() {
            let stream = comp
                .compress(field, ErrorBound::Abs(1e-3))
                .unwrap_or_else(|e| panic!("{name}: compress failed: {e}"));
            for seed in 0..RESEALED_SEEDS {
                let (bad, fault) = qip_fault::corrupt_resealed(&stream, seed)
                    .unwrap_or_else(|| panic!("{name}: stream not sealed"));
                // The property: decompress must return (Ok with garbage values
                // is tolerable, Err is typical), not panic, abort, or OOM. A
                // panic is caught and replayed under tracing so the failure
                // message carries the per-stage trace next to `fault`'s seed.
                let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let r: Result<Field<f32>, _> = comp.decompress(&bad);
                    r
                }));
                match res {
                    Err(_) => {
                        let trace = qip_fault::trace_replay(|| {
                            let _: Result<Field<f32>, _> = comp.decompress(&bad);
                        });
                        panic!("{name} panicked on a resealed corruption: {fault}\n{trace}");
                    }
                    Ok(Ok(out)) => {
                        // If the damaged stream still parses, the declared
                        // shape must at least be internally consistent.
                        if out.len() != out.shape().len() {
                            let trace = qip_fault::trace_replay(|| {
                                let _: Result<Field<f32>, _> = comp.decompress(&bad);
                            });
                            panic!("{name}: inconsistent field from {fault}\n{trace}");
                        }
                    }
                    Ok(Err(_)) => {}
                }
            }
        }
    }
}

/// Seeded corruptions per (inner compressor, stream) in the block-parallel
/// sweep below (smaller than RAW_SEEDS/RESEALED_SEEDS because the sweep
/// multiplies across four inner compressors).
const PAR_RAW_SEEDS: u64 = 400;
const PAR_RESEALED_SEEDS: u64 = 200;

#[test]
fn block_parallel_wrapper_rejects_corruption() {
    // The wrapper stream carries its own CRC32 trailer (on top of the
    // per-block trailers the inner compressors seal), so raw damage anywhere
    // — wrapper header, block table, nested payloads, trailer — must be
    // rejected, for every interpolation-based inner compressor.
    let field = qip_data::Dataset::Miranda.generate_f32(1, &[20, 18, 10]);
    for inner in AnyCompressor::base_four(QpConfig::best_fit()) {
        let name = Compressor::<f32>::name(&inner);
        let par = BlockParallel::new(inner, 10).expect("valid block size");
        let stream = par.compress(&field, ErrorBound::Abs(1e-3)).expect("compress");
        for seed in 0..PAR_RAW_SEEDS {
            let (bad, fault) = qip_fault::corrupt(&stream, seed);
            let res: Result<Field<f32>, _> = par.decompress(&bad);
            assert!(res.is_err(), "{name}∥: decoded corrupted stream: {fault}");
        }
    }
}

#[test]
fn block_parallel_resealed_corruptions_never_panic() {
    // Damage that gets past the wrapper's CRC gate (payload corrupted, outer
    // trailer recomputed) reaches the block table and the nested decoders;
    // like the flat-stream pass above, the contract is no panics, ever.
    let field = qip_data::Dataset::Miranda.generate_f32(4, &[20, 18, 10]);
    for inner in AnyCompressor::base_four(QpConfig::best_fit()) {
        let name = Compressor::<f32>::name(&inner);
        let par = BlockParallel::new(inner, 10).expect("valid block size");
        let stream = par.compress(&field, ErrorBound::Abs(1e-3)).expect("compress");
        for seed in 0..PAR_RESEALED_SEEDS {
            let (bad, fault) = qip_fault::corrupt_resealed(&stream, seed).expect("sealed");
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let r: Result<Field<f32>, _> = par.decompress(&bad);
                r
            }));
            if res.is_err() {
                let trace = qip_fault::trace_replay(|| {
                    let _: Result<Field<f32>, _> = par.decompress(&bad);
                });
                panic!("{name}∥ panicked on a resealed corruption: {fault}\n{trace}");
            }
        }
    }
}

#[test]
fn block_parallel_trailer_flags_every_payload_bitflip() {
    // The wrapper-level CRC must catch any single-bit flip before nested
    // parsing starts, exactly like the flat-stream trailer check.
    let field = qip_data::Dataset::SegSalt.generate_f32(0, &[16, 12, 10]);
    let par = BlockParallel::new(Sz3::new(), 8).expect("valid block size");
    let stream = par.compress(&field, ErrorBound::Abs(1e-2)).expect("compress");
    let mut rng = qip_fault::XorShift64::new(0xB10C_BA11);
    for pos in 0..stream.len() {
        let mut bad = stream.clone();
        bad[pos] ^= 1 << rng.below(8);
        let res: Result<Field<f32>, _> = par.decompress(&bad);
        match res {
            Err(qip_core::CompressError::Corrupt(_)) => {}
            Err(e) => panic!("∥: flip at byte {pos} gave non-Corrupt error: {e}"),
            Ok(_) => panic!("∥: flip at byte {pos} decoded cleanly"),
        }
    }
}

#[test]
fn crc_trailer_flags_every_payload_bitflip() {
    // Acceptance check for the integrity layer: flipping any single bit of a
    // compressed stream must surface as CompressError::Corrupt (the CRC gate),
    // for every compressor in the registry.
    let field = qip_data::Dataset::Miranda.generate_f32(5, &[9, 8, 7]);
    for comp in registry() {
        let name = Compressor::<f32>::name(&comp);
        let stream = comp.compress(&field, ErrorBound::Abs(1e-2)).expect("compress");
        // Exhaustive over bytes, seeded over bits, to keep runtime sane.
        let mut rng = qip_fault::XorShift64::new(0xC0FF_EE00);
        for pos in 0..stream.len() {
            let mut bad = stream.clone();
            bad[pos] ^= 1 << rng.below(8);
            let res: Result<Field<f32>, _> = comp.decompress(&bad);
            match res {
                Err(qip_core::CompressError::Corrupt(_)) => {}
                Err(e) => panic!("{name}: flip at byte {pos} gave non-Corrupt error: {e}"),
                Ok(_) => panic!("{name}: flip at byte {pos} decoded cleanly"),
            }
        }
    }
}

#[test]
fn telemetry_flight_recorder_captures_rejections() {
    // With a metrics hub attached, every rejected decode both lands in the
    // hub via the registry entry point and can be annotated with the fault's
    // repro seed via `record_rejection` — the production triage path.
    let field = qip_data::Dataset::SegSalt.generate_f32(1, &[12, 10, 8]);
    let comp = AnyCompressor::by_name("sz3+qp").unwrap();
    let name = Compressor::<f32>::name(&comp);
    let stream = comp.compress(&field, ErrorBound::Abs(1e-3)).expect("compress");
    let hub = std::sync::Arc::new(qip_telemetry::MetricsHub::new());
    qip_telemetry::attach(std::sync::Arc::clone(&hub));
    let mut rejected = 0u64;
    for seed in 0..50u64 {
        let (bad, fault) = qip_fault::corrupt(&stream, seed);
        let res: Result<Field<f32>, _> = comp.decompress(&bad);
        match res {
            Ok(_) => {}
            Err(e) => {
                qip_fault::record_rejection(&fault, &name, &e.to_string());
                rejected += 1;
            }
        }
    }
    qip_telemetry::detach();
    assert_eq!(rejected, 50, "every raw corruption must be rejected");
    let records = hub.recorder.records();
    // One registry-side record plus one fault annotation per rejection (other
    // concurrently running tests may add more; never fewer).
    assert!(records.len() as u64 >= 2 * rejected, "got {} records", records.len());
    let annotated: Vec<_> =
        records.iter().filter(|r| r.outcome.contains("reproduce with qip_fault::")).collect();
    assert!(annotated.len() as u64 >= rejected);
    assert!(annotated.iter().all(|r| r.compressor == name && r.op == "decompress"));
    // The registry-side records classify the CRC rejection as corrupt.
    assert!(records.iter().any(|r| r.outcome.starts_with("corrupt stream:")));
    let jsonl = hub.recorder.dump_jsonl();
    assert!(jsonl.lines().count() >= records.len().min(2));
}

#[test]
fn truncation_at_every_prefix_errors() {
    let field = qip_data::Dataset::Miranda.generate_f32(2, &[10, 9, 8]);
    for comp in registry() {
        let name = Compressor::<f32>::name(&comp);
        let stream = comp.compress(&field, ErrorBound::Abs(1e-2)).expect("compress");
        for cut in 0..stream.len() {
            let res: Result<Field<f32>, _> = comp.decompress(&stream[..cut]);
            assert!(res.is_err(), "{name}: prefix of {cut} bytes decoded cleanly");
        }
    }
}

/// Seeded corruptions per inner compressor in the tiled-container sweeps
/// (sized like the block-parallel ones: the sweep multiplies across inners).
const TILED_RAW_SEEDS: u64 = 400;
const TILED_RESEALED_SEEDS: u64 = 200;

fn tiled_stream(inner: AnyCompressor) -> Vec<u8> {
    let field = qip_data::Dataset::Miranda.generate_f32(6, &[20, 18, 10]);
    let tiled = qip_container::TiledCompressor::new(inner, 8).expect("valid tile edge");
    tiled.compress(&field, ErrorBound::Abs(1e-3)).expect("compress")
}

/// Recompute every per-tile CRC from the (possibly damaged) payload and
/// reseal the index, so payload corruption survives both container gates and
/// reaches the inner tile decoders — the tiled analogue of
/// `qip_fault::corrupt_resealed`.
fn reseal_tiled(bytes: &[u8]) -> Option<Vec<u8>> {
    let (info, payload) = qip_container::ContainerInfo::parse(bytes).ok()?;
    let tiles: Vec<qip_container::TileEntry> = info
        .tiles
        .iter()
        .map(|t| qip_container::TileEntry {
            offset: t.offset,
            len: t.len,
            crc32: qip_core::integrity::crc32(&payload[t.offset..t.offset + t.len]),
        })
        .collect();
    Some(qip_container::assemble(
        info.bits,
        &info.dims,
        info.tile,
        info.abs_bound,
        &info.compressor,
        &tiles,
        payload,
    ))
}

#[test]
fn tiled_container_raw_corruptions_always_error() {
    // The sealed index covers every header/index byte and each tile stream is
    // CRC-gated, so raw damage anywhere in the container — magic, index,
    // payload, framing — must be rejected, for every inner compressor.
    for inner in AnyCompressor::base_four(QpConfig::best_fit()) {
        let name = Compressor::<f32>::name(&inner);
        let stream = tiled_stream(inner);
        for seed in 0..TILED_RAW_SEEDS {
            let (bad, fault) = qip_fault::corrupt(&stream, seed);
            let res: Result<Field<f32>, _> = qip_container::decompress_full(&bad);
            assert!(res.is_err(), "{name}⊞: decoded corrupted container: {fault}");
        }
    }
}

#[test]
fn tiled_container_every_bitflip_is_rejected() {
    // Exhaustive over bytes, seeded over bits: no single-bit flip anywhere in
    // a container may decode cleanly (index flips fail the seal, payload
    // flips fail a tile CRC, framing flips fail structural validation).
    let stream = tiled_stream(AnyCompressor::by_name("sz3+qp").unwrap());
    let mut rng = qip_fault::XorShift64::new(0x0007_11ED);
    for pos in 0..stream.len() {
        let mut bad = stream.clone();
        bad[pos] ^= 1 << rng.below(8);
        let res: Result<Field<f32>, _> = qip_container::decompress_full(&bad);
        assert!(res.is_err(), "⊞: flip at byte {pos} decoded cleanly");
    }
}

#[test]
fn tiled_payload_resealed_corruptions_never_panic() {
    // Damage that gets past both container gates (tile CRCs recomputed, index
    // resealed) reaches the inner tile decoders; the contract is the same as
    // everywhere else — error is fine, garbage-free Ok is fine, panic never.
    for inner in AnyCompressor::base_four(QpConfig::best_fit()) {
        let name = Compressor::<f32>::name(&inner);
        let stream = tiled_stream(inner);
        let (_, payload) = qip_container::ContainerInfo::parse(&stream).expect("parse");
        let payload_start = stream.len() - payload.len();
        for seed in 0..TILED_RESEALED_SEEDS {
            let mut rng = qip_fault::XorShift64::new(seed ^ 0x0715_3BAD);
            let mut bad = stream.clone();
            let pos = payload_start + rng.below(bad.len() - payload_start);
            let bit = 1u8 << rng.below(8);
            bad[pos] ^= bit;
            let bad = reseal_tiled(&bad).expect("index untouched, reseal must parse");
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let r: Result<Field<f32>, _> = qip_container::decompress_full(&bad);
                r
            }));
            if res.is_err() {
                let trace = qip_fault::trace_replay(|| {
                    let _: Result<Field<f32>, _> = qip_container::decompress_full(&bad);
                });
                panic!(
                    "{name}⊞ panicked on a resealed payload flip (seed {seed}, byte {pos}, bit {bit:#x})\n{trace}"
                );
            }
        }
    }
}

#[test]
fn tiled_index_inconsistencies_error_never_panic() {
    // A hostile writer can produce an index that passes its seal but lies
    // about the payload; every such lie must fail structural validation or a
    // tile CRC — with a typed error, never a panic.
    let stream = tiled_stream(AnyCompressor::by_name("qoz+qp").unwrap());
    let (info, payload) = qip_container::ContainerInfo::parse(&stream).expect("parse");
    let rebuild = |tiles: Vec<qip_container::TileEntry>| {
        qip_container::assemble(
            info.bits,
            &info.dims,
            info.tile,
            info.abs_bound,
            &info.compressor,
            &tiles,
            payload,
        )
    };

    let mut lies: Vec<(String, Vec<qip_container::TileEntry>)> = Vec::new();
    let mut t = info.tiles.clone();
    if let Some(last) = t.last_mut() {
        last.len += 1; // index claims one byte more payload than exists
    }
    lies.push(("inflated last tile length".into(), t));
    let mut t = info.tiles.clone();
    t[0].crc32 ^= 0xDEAD_BEEF; // valid geometry, wrong tile checksum
    lies.push(("wrong tile CRC".into(), t));
    let mut t = info.tiles.clone();
    if t.len() >= 2 {
        t[1].offset += 1; // breaks the contiguity invariant
        lies.push(("non-contiguous offsets".into(), t));
    }
    let mut t = info.tiles.clone();
    t.pop(); // tile count disagrees with the grid geometry
    lies.push(("missing tile entry".into(), t));

    for (what, tiles) in lies {
        let bad = rebuild(tiles);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let r: Result<Field<f32>, _> = qip_container::decompress_full(&bad);
            r
        }));
        match res {
            Err(_) => panic!("⊞ panicked on {what}"),
            Ok(Ok(_)) => panic!("⊞ decoded a container with {what}"),
            Ok(Err(_)) => {}
        }
    }
}

#[test]
fn tiled_region_reads_reject_index_corruption_lazily() {
    // read_region only CRC-gates the tiles it touches, but the sealed index
    // is always verified first — so index damage fails every region read,
    // while a payload lie about an untouched tile must not corrupt a read
    // that never visits it.
    let stream = tiled_stream(AnyCompressor::by_name("hpez+qp").unwrap());
    let region = qip_tensor::Region::new(&[0, 0, 0], &[8, 8, 8]); // tile 0 only
    let clean: Field<f32> = qip_container::read_region(&stream, &region).expect("clean read");

    // Any index bitflip → every region read fails the seal.
    let (_, payload) = qip_container::ContainerInfo::parse(&stream).expect("parse");
    let index_end = stream.len() - payload.len();
    let mut rng = qip_fault::XorShift64::new(0x1D3_C0DE);
    for _ in 0..64 {
        let mut bad = stream.clone();
        let pos = rng.below(index_end);
        bad[pos] ^= 1 << rng.below(8);
        let res: Result<Field<f32>, _> = qip_container::read_region(&bad, &region);
        assert!(res.is_err(), "index flip at byte {pos} survived a region read");
    }

    // Damage confined to the *last* tile's payload (CRC fixed up, index
    // resealed) must leave a region read of tile 0 byte-identical.
    let (info, _) = qip_container::ContainerInfo::parse(&stream).expect("parse");
    let last = info.tiles.last().expect("tiles");
    assert!(last.len > 0, "last tile must have payload");
    let mut bad = stream.clone();
    let pos = index_end + last.offset + last.len / 2;
    bad[pos] ^= 0x10;
    let bad = reseal_tiled(&bad).expect("reseal");
    let got: Field<f32> = qip_container::read_region(&bad, &region)
        .expect("region away from the damage must still decode");
    assert_eq!(got.to_le_bytes(), clean.to_le_bytes());
}

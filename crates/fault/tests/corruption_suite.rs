//! Workspace-wide corruption suite: every compressor in the bench registry
//! (the four interpolation-based compressors with QP off and on, plus the
//! three transform-based comparators, plus the block-parallel wrapper) must
//! reject damaged streams with an error — never a panic — under thousands of
//! seeded corruptions, and must survive corruptions that carry a valid
//! integrity trailer (reaching the deep parsing layers) without panicking.
//!
//! Any failure message prints the seed; replay it with
//! `qip_fault::corrupt(stream, seed)` / `corrupt_resealed(stream, seed)`.

use qip_registry::AnyCompressor;
use qip_core::{Compressor, ErrorBound, QpConfig};
use qip_parallel::BlockParallel;
use qip_sz3::Sz3;
use qip_tensor::Field;

/// Seeded corruptions per (compressor, stream) for the raw (CRC-gated) pass.
const RAW_SEEDS: u64 = 1000;
/// Seeded corruptions per (compressor, stream) for the resealed (deep) pass.
const RESEALED_SEEDS: u64 = 300;

fn registry() -> Vec<AnyCompressor> {
    AnyCompressor::registry()
}

fn small_fields() -> Vec<Field<f32>> {
    vec![
        qip_data::Dataset::Miranda.generate_f32(7, &[12, 13, 11]),
        qip_data::Dataset::SegSalt.generate_f32(3, &[16, 9, 8]),
    ]
}

#[test]
fn raw_corruptions_always_error() {
    for comp in registry() {
        let name = Compressor::<f32>::name(&comp);
        for (fi, field) in small_fields().iter().enumerate() {
            let stream = comp
                .compress(field, ErrorBound::Abs(1e-3))
                .unwrap_or_else(|e| panic!("{name}: compress failed: {e}"));
            for seed in 0..RAW_SEEDS {
                let (bad, fault) = qip_fault::corrupt(&stream, seed);
                let res: Result<Field<f32>, _> = comp.decompress(&bad);
                if res.is_ok() {
                    let trace = qip_fault::trace_replay(|| {
                        let _: Result<Field<f32>, _> = comp.decompress(&bad);
                    });
                    panic!(
                        "{name} on field {fi} decoded a corrupted stream cleanly: {fault}\n{trace}"
                    );
                }
            }
        }
    }
}

#[test]
fn resealed_corruptions_never_panic() {
    for comp in registry() {
        let name = Compressor::<f32>::name(&comp);
        for field in &small_fields() {
            let stream = comp
                .compress(field, ErrorBound::Abs(1e-3))
                .unwrap_or_else(|e| panic!("{name}: compress failed: {e}"));
            for seed in 0..RESEALED_SEEDS {
                let (bad, fault) = qip_fault::corrupt_resealed(&stream, seed)
                    .unwrap_or_else(|| panic!("{name}: stream not sealed"));
                // The property: decompress must return (Ok with garbage values
                // is tolerable, Err is typical), not panic, abort, or OOM. A
                // panic is caught and replayed under tracing so the failure
                // message carries the per-stage trace next to `fault`'s seed.
                let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let r: Result<Field<f32>, _> = comp.decompress(&bad);
                    r
                }));
                match res {
                    Err(_) => {
                        let trace = qip_fault::trace_replay(|| {
                            let _: Result<Field<f32>, _> = comp.decompress(&bad);
                        });
                        panic!("{name} panicked on a resealed corruption: {fault}\n{trace}");
                    }
                    Ok(Ok(out)) => {
                        // If the damaged stream still parses, the declared
                        // shape must at least be internally consistent.
                        if out.len() != out.shape().len() {
                            let trace = qip_fault::trace_replay(|| {
                                let _: Result<Field<f32>, _> = comp.decompress(&bad);
                            });
                            panic!("{name}: inconsistent field from {fault}\n{trace}");
                        }
                    }
                    Ok(Err(_)) => {}
                }
            }
        }
    }
}

/// Seeded corruptions per (inner compressor, stream) in the block-parallel
/// sweep below (smaller than RAW_SEEDS/RESEALED_SEEDS because the sweep
/// multiplies across four inner compressors).
const PAR_RAW_SEEDS: u64 = 400;
const PAR_RESEALED_SEEDS: u64 = 200;

#[test]
fn block_parallel_wrapper_rejects_corruption() {
    // The wrapper stream carries its own CRC32 trailer (on top of the
    // per-block trailers the inner compressors seal), so raw damage anywhere
    // — wrapper header, block table, nested payloads, trailer — must be
    // rejected, for every interpolation-based inner compressor.
    let field = qip_data::Dataset::Miranda.generate_f32(1, &[20, 18, 10]);
    for inner in AnyCompressor::base_four(QpConfig::best_fit()) {
        let name = Compressor::<f32>::name(&inner);
        let par = BlockParallel::new(inner, 10).expect("valid block size");
        let stream = par.compress(&field, ErrorBound::Abs(1e-3)).expect("compress");
        for seed in 0..PAR_RAW_SEEDS {
            let (bad, fault) = qip_fault::corrupt(&stream, seed);
            let res: Result<Field<f32>, _> = par.decompress(&bad);
            assert!(res.is_err(), "{name}∥: decoded corrupted stream: {fault}");
        }
    }
}

#[test]
fn block_parallel_resealed_corruptions_never_panic() {
    // Damage that gets past the wrapper's CRC gate (payload corrupted, outer
    // trailer recomputed) reaches the block table and the nested decoders;
    // like the flat-stream pass above, the contract is no panics, ever.
    let field = qip_data::Dataset::Miranda.generate_f32(4, &[20, 18, 10]);
    for inner in AnyCompressor::base_four(QpConfig::best_fit()) {
        let name = Compressor::<f32>::name(&inner);
        let par = BlockParallel::new(inner, 10).expect("valid block size");
        let stream = par.compress(&field, ErrorBound::Abs(1e-3)).expect("compress");
        for seed in 0..PAR_RESEALED_SEEDS {
            let (bad, fault) = qip_fault::corrupt_resealed(&stream, seed).expect("sealed");
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let r: Result<Field<f32>, _> = par.decompress(&bad);
                r
            }));
            if res.is_err() {
                let trace = qip_fault::trace_replay(|| {
                    let _: Result<Field<f32>, _> = par.decompress(&bad);
                });
                panic!("{name}∥ panicked on a resealed corruption: {fault}\n{trace}");
            }
        }
    }
}

#[test]
fn block_parallel_trailer_flags_every_payload_bitflip() {
    // The wrapper-level CRC must catch any single-bit flip before nested
    // parsing starts, exactly like the flat-stream trailer check.
    let field = qip_data::Dataset::SegSalt.generate_f32(0, &[16, 12, 10]);
    let par = BlockParallel::new(Sz3::new(), 8).expect("valid block size");
    let stream = par.compress(&field, ErrorBound::Abs(1e-2)).expect("compress");
    let mut rng = qip_fault::XorShift64::new(0xB10C_BA11);
    for pos in 0..stream.len() {
        let mut bad = stream.clone();
        bad[pos] ^= 1 << rng.below(8);
        let res: Result<Field<f32>, _> = par.decompress(&bad);
        match res {
            Err(qip_core::CompressError::Corrupt(_)) => {}
            Err(e) => panic!("∥: flip at byte {pos} gave non-Corrupt error: {e}"),
            Ok(_) => panic!("∥: flip at byte {pos} decoded cleanly"),
        }
    }
}

#[test]
fn crc_trailer_flags_every_payload_bitflip() {
    // Acceptance check for the integrity layer: flipping any single bit of a
    // compressed stream must surface as CompressError::Corrupt (the CRC gate),
    // for every compressor in the registry.
    let field = qip_data::Dataset::Miranda.generate_f32(5, &[9, 8, 7]);
    for comp in registry() {
        let name = Compressor::<f32>::name(&comp);
        let stream = comp.compress(&field, ErrorBound::Abs(1e-2)).expect("compress");
        // Exhaustive over bytes, seeded over bits, to keep runtime sane.
        let mut rng = qip_fault::XorShift64::new(0xC0FF_EE00);
        for pos in 0..stream.len() {
            let mut bad = stream.clone();
            bad[pos] ^= 1 << rng.below(8);
            let res: Result<Field<f32>, _> = comp.decompress(&bad);
            match res {
                Err(qip_core::CompressError::Corrupt(_)) => {}
                Err(e) => panic!("{name}: flip at byte {pos} gave non-Corrupt error: {e}"),
                Ok(_) => panic!("{name}: flip at byte {pos} decoded cleanly"),
            }
        }
    }
}

#[test]
fn telemetry_flight_recorder_captures_rejections() {
    // With a metrics hub attached, every rejected decode both lands in the
    // hub via the registry entry point and can be annotated with the fault's
    // repro seed via `record_rejection` — the production triage path.
    let field = qip_data::Dataset::SegSalt.generate_f32(1, &[12, 10, 8]);
    let comp = AnyCompressor::by_name("sz3+qp").unwrap();
    let name = Compressor::<f32>::name(&comp);
    let stream = comp.compress(&field, ErrorBound::Abs(1e-3)).expect("compress");
    let hub = std::sync::Arc::new(qip_telemetry::MetricsHub::new());
    qip_telemetry::attach(std::sync::Arc::clone(&hub));
    let mut rejected = 0u64;
    for seed in 0..50u64 {
        let (bad, fault) = qip_fault::corrupt(&stream, seed);
        let res: Result<Field<f32>, _> = comp.decompress(&bad);
        match res {
            Ok(_) => {}
            Err(e) => {
                qip_fault::record_rejection(&fault, &name, &e.to_string());
                rejected += 1;
            }
        }
    }
    qip_telemetry::detach();
    assert_eq!(rejected, 50, "every raw corruption must be rejected");
    let records = hub.recorder.records();
    // One registry-side record plus one fault annotation per rejection (other
    // concurrently running tests may add more; never fewer).
    assert!(records.len() as u64 >= 2 * rejected, "got {} records", records.len());
    let annotated: Vec<_> =
        records.iter().filter(|r| r.outcome.contains("reproduce with qip_fault::")).collect();
    assert!(annotated.len() as u64 >= rejected);
    assert!(annotated.iter().all(|r| r.compressor == name && r.op == "decompress"));
    // The registry-side records classify the CRC rejection as corrupt.
    assert!(records.iter().any(|r| r.outcome.starts_with("corrupt stream:")));
    let jsonl = hub.recorder.dump_jsonl();
    assert!(jsonl.lines().count() >= records.len().min(2));
}

#[test]
fn truncation_at_every_prefix_errors() {
    let field = qip_data::Dataset::Miranda.generate_f32(2, &[10, 9, 8]);
    for comp in registry() {
        let name = Compressor::<f32>::name(&comp);
        let stream = comp.compress(&field, ErrorBound::Abs(1e-2)).expect("compress");
        for cut in 0..stream.len() {
            let res: Result<Field<f32>, _> = comp.decompress(&stream[..cut]);
            assert!(res.is_err(), "{name}: prefix of {cut} bytes decoded cleanly");
        }
    }
}

//! Decode-side allocation guard: no single allocation made while decoding a
//! (possibly corrupted) stream may exceed 16× the stream's declared
//! uncompressed size. This pins the hardening work in the decoders — index
//! counts capped by the declared volume, LZ expansion capped by the entropy
//! budget, header-volume buffers allocated fallibly — to a measurable bound.
//!
//! A tracking global allocator records the largest single allocation request;
//! corruption is restricted to the stream body *past* the header region (and
//! resealed), so the declared size stays that of the real field and the bound
//! is meaningful.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct TrackingAlloc;

static TRACKING: AtomicBool = AtomicBool::new(false);
static MAX_ALLOC: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            MAX_ALLOC.fetch_max(layout.size(), Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            MAX_ALLOC.fetch_max(new_size, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: TrackingAlloc = TrackingAlloc;

fn max_alloc_during<R>(f: impl FnOnce() -> R) -> (R, usize) {
    MAX_ALLOC.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    let r = f();
    TRACKING.store(false, Ordering::SeqCst);
    (r, MAX_ALLOC.load(Ordering::SeqCst))
}

use qip_registry::AnyCompressor;
use qip_core::{Compressor, ErrorBound, QpConfig};
use qip_tensor::Field;

/// Corrupt only stream bytes past the header region, then reseal, so the
/// declared shape survives and the 16× bound refers to the true field size.
fn corrupt_body_resealed(stream: &[u8], seed: u64) -> Vec<u8> {
    const HEADER_SKIP: usize = 48;
    let payload = qip_core::integrity::check(stream).expect("sealed stream");
    let mut buf = payload.to_vec();
    if buf.len() > HEADER_SKIP + 1 {
        let mut rng = qip_fault::XorShift64::new(seed);
        for _ in 0..1 + rng.below(8) {
            let pos = HEADER_SKIP + rng.below(buf.len() - HEADER_SKIP);
            buf[pos] ^= rng.nonzero_byte();
        }
    }
    qip_core::integrity::seal(buf)
}

#[test]
fn decode_allocations_bounded_by_declared_size() {
    let field: Field<f32> = qip_data::Dataset::Miranda.generate_f32(11, &[14, 12, 10]);
    let declared_bytes = field.len() * 4;
    // 16× the declared size, plus a fixed floor for decoder working state
    // (readers, tables, small headers) that doesn't scale with the field.
    let bound = 16 * declared_bytes + (64 << 10);

    let mut all = AnyCompressor::base_four(QpConfig::off());
    all.extend(AnyCompressor::base_four(QpConfig::best_fit()));
    all.extend(AnyCompressor::comparators());

    for comp in all {
        let name = Compressor::<f32>::name(&comp);
        let stream = comp.compress(&field, ErrorBound::Abs(1e-3)).expect("compress");

        // Pristine stream first: the bound must hold on the honest path too.
        let (res, peak) = max_alloc_during(|| comp.decompress(&stream));
        let _: Field<f32> = res.expect("pristine stream decodes");
        assert!(peak <= bound, "{name}: pristine decode allocated {peak} > {bound}");

        for seed in 0..200u64 {
            let bad = corrupt_body_resealed(&stream, seed);
            let (res, peak) = max_alloc_during(|| comp.decompress(&bad));
            let _: Result<Field<f32>, _> = res; // Ok-or-Err both fine
            assert!(
                peak <= bound,
                "{name}: seed {seed:#x} drove a {peak}-byte allocation (> {bound})"
            );
        }
    }
}

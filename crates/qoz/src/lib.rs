//! QoZ: dynamic quality-metric-oriented error-bounded compressor.
//!
//! QoZ (paper ref \[8\]) extends SZ3's interpolation pipeline with
//! (1) a lossless **anchor grid** (every 64th point per axis stored raw),
//! (2) **per-level error bounds** `eb_l = max(eb/α^(l−1), eb/β)` so coarse
//! levels — whose errors propagate through the interpolation hierarchy — are
//! coded more precisely, and (3) an **auto-tuner** that picks (α, β) online by
//! trial-compressing a sample block and keeping the best rate at fixed bound.
//! Unlike SZ3 it never switches away from interpolation (the paper leans on
//! this: "the compression overhead of QP is much more steady on QoZ because
//! QoZ does not make the Lorenzo switch").

#![warn(missing_docs)]

use qip_core::{CompressCtx, CompressError, Compressor, ErrorBound, QpConfig};
use qip_interp::{EngineConfig, InterpEngine};
use qip_tensor::{Field, Scalar};

/// Stream magic for QoZ.
const MAGIC_QOZ: u8 = 0x30;

/// Candidate (α, β) pairs explored by the auto-tuner (α = 1 reproduces the
/// uniform SZ3 bounds; larger α spends more bits on coarse levels).
const TUNE_CANDIDATES: [(f64, f64); 4] = [(1.0, 1.0), (1.25, 2.0), (1.5, 2.0), (2.0, 4.0)];

/// What the online tuner optimizes for — QoZ's "dynamic quality metric"
/// (paper ref \[8\]): the compressor adapts its internals to the metric the
/// user actually cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TuneTarget {
    /// Best compression ratio at the requested bound (the default).
    #[default]
    Ratio,
    /// Best SSIM per stored bit at the requested bound.
    Ssim,
}

/// The QoZ compressor.
#[derive(Debug, Clone)]
pub struct Qoz {
    qp: QpConfig,
    /// Pin (α, β) instead of auto-tuning (used by ablation benches).
    fixed_alpha_beta: Option<(f64, f64)>,
    target: TuneTarget,
}

impl Qoz {
    /// QoZ with QP disabled and auto-tuning on.
    pub fn new() -> Self {
        Qoz { qp: QpConfig::off(), fixed_alpha_beta: None, target: TuneTarget::Ratio }
    }

    /// Select the quality metric the online tuner optimizes (builder style).
    pub fn with_target(mut self, target: TuneTarget) -> Self {
        self.target = target;
        self
    }

    /// Enable/replace the QP configuration (builder style).
    pub fn with_qp(mut self, qp: QpConfig) -> Self {
        self.qp = qp;
        self
    }

    /// Pin the per-level bound parameters, disabling the tuner.
    pub fn with_alpha_beta(mut self, alpha: f64, beta: f64) -> Self {
        self.fixed_alpha_beta = Some((alpha, beta));
        self
    }

    /// The active QP configuration.
    pub fn qp(&self) -> &QpConfig {
        &self.qp
    }

    /// Capture the quantization index arrays (characterization API).
    pub fn quant_capture<T: Scalar>(
        &self,
        field: &Field<T>,
        bound: ErrorBound,
    ) -> Result<qip_interp::QuantCapture, CompressError> {
        let (a, b) = self.tune(field, bound);
        Ok(self.engine(a, b).compress_capturing(field, bound)?.1)
    }

    fn engine(&self, alpha: f64, beta: f64) -> InterpEngine {
        let mut cfg = EngineConfig::qoz_like(MAGIC_QOZ);
        cfg.alpha = alpha;
        cfg.beta = beta;
        cfg.qp = self.qp;
        InterpEngine::new(cfg)
    }

    /// Pick (α, β) by trial compression of a central sample block: the
    /// smallest stream wins (same bound ⇒ same worst-case quality).
    fn tune<T: Scalar>(&self, field: &Field<T>, bound: ErrorBound) -> (f64, f64) {
        self.tune_with(field, bound, &mut CompressCtx::new(), &mut Vec::new())
    }

    /// [`Self::tune`] with caller-provided scratch, so the `compress_into`
    /// path's trial compressions reuse the context instead of allocating
    /// their own working set per candidate. Trial streams are byte-identical
    /// either way, so both entry points pick the same (α, β).
    fn tune_with<T: Scalar>(
        &self,
        field: &Field<T>,
        bound: ErrorBound,
        ctx: &mut CompressCtx,
        scratch: &mut Vec<u8>,
    ) -> (f64, f64) {
        if let Some(ab) = self.fixed_alpha_beta {
            return ab;
        }
        if field.len() < 8192 {
            return TUNE_CANDIDATES[1];
        }
        // Trial compressions run capture-paused: the tuning cost stays
        // visible as this span without polluting the chosen run's stats.
        let _t = qip_trace::span("tune");
        let _p = qip_trace::pause();
        let _pt = qip_telemetry::pause();
        let dims = field.shape().dims();
        let origin: Vec<usize> = dims.iter().map(|&d| d.saturating_sub(d.min(48)) / 2).collect();
        let extent: Vec<usize> = dims.iter().map(|&d| d.min(48)).collect();
        let block = field.subregion(&origin, &extent);
        let abs = bound.resolve(field).as_abs();
        // The tuner runs QP-blind so QP never shifts (α, β) — and therefore
        // never changes the decompressed data (the paper's invariant).
        let mut blind = self.clone();
        blind.qp = qip_core::QpConfig::off();
        let mut best = TUNE_CANDIDATES[1];
        let mut best_score = f64::NEG_INFINITY;
        for &(a, b) in &TUNE_CANDIDATES {
            let eng = blind.engine(a, b);
            scratch.clear();
            if eng.compress_append(&block, abs, ctx, scratch).is_err() {
                continue;
            }
            let score = match self.target {
                // Smaller stream = better (same worst-case quality).
                TuneTarget::Ratio => -(scratch.len() as f64),
                // SSIM per stored bit: decompress the trial and measure.
                TuneTarget::Ssim => match eng.decompress_with(scratch, ctx) {
                    Ok(out) => {
                        qip_metrics::ssim(&block, &out) / (scratch.len().max(1) as f64)
                    }
                    Err(_) => continue,
                },
            };
            if score > best_score {
                best_score = score;
                best = (a, b);
            }
        }
        best
    }
}

impl Default for Qoz {
    fn default() -> Self {
        Self::new()
    }
}

/// Record the (α, β) pair the tuner settled on.
fn trace_tuned(alpha: f64, beta: f64) {
    if qip_trace::enabled() {
        qip_trace::value("qoz.alpha", alpha);
        qip_trace::value("qoz.beta", beta);
    }
    if qip_telemetry::active() {
        qip_telemetry::gauge_set("qip.qoz.alpha", &[], alpha);
        qip_telemetry::gauge_set("qip.qoz.beta", &[], beta);
    }
}

impl<T: Scalar> Compressor<T> for Qoz {
    fn name(&self) -> String {
        if self.qp.is_enabled() {
            "QoZ+QP".into()
        } else {
            "QoZ".into()
        }
    }

    fn compress(&self, field: &Field<T>, bound: ErrorBound) -> Result<Vec<u8>, CompressError> {
        // Route through the ctx scratch arena (fresh context) so the plain
        // API stops paying per-point allocation; byte-identical to
        // `compress_into` by construction — it IS `compress_into`.
        let mut out = Vec::new();
        self.compress_into(field, bound, &mut CompressCtx::new(), &mut out)?;
        Ok(out)
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Field<T>, CompressError> {
        let bytes = qip_core::integrity::check(bytes)?;
        // α/β live in the stream; the engine overrides its defaults from it.
        self.engine(1.0, 1.0).decompress(bytes)
    }

    fn compress_into(
        &self,
        field: &Field<T>,
        bound: ErrorBound,
        ctx: &mut CompressCtx,
        out: &mut Vec<u8>,
    ) -> Result<(), CompressError> {
        // `out` doubles as the trial-stream scratch; it is rebuilt below.
        let (alpha, beta) = self.tune_with(field, bound, ctx, out);
        trace_tuned(alpha, beta);
        out.clear();
        self.engine(alpha, beta).compress_append(field, bound, ctx, out)?;
        let _t = qip_trace::span("seal");
        qip_core::integrity::seal_in_place(out);
        Ok(())
    }

    fn decompress_into(
        &self,
        bytes: &[u8],
        ctx: &mut CompressCtx,
    ) -> Result<Field<T>, CompressError> {
        let bytes = qip_core::integrity::check(bytes)?;
        self.engine(1.0, 1.0).decompress_with(bytes, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qip_metrics::max_abs_error;
    use qip_tensor::Shape;

    fn smooth(dims: &[usize]) -> Field<f32> {
        Field::from_fn(Shape::new(dims), |c| {
            let x = c[0] as f32;
            let y = c.get(1).copied().unwrap_or(0) as f32;
            let z = c.get(2).copied().unwrap_or(0) as f32;
            (0.08 * x).sin() + (0.06 * y).cos() * 0.7 + (0.04 * z).sin() * 0.3
        })
    }

    #[test]
    fn roundtrip_bound() {
        let f = smooth(&[26, 20, 14]);
        for qp in [QpConfig::off(), QpConfig::best_fit()] {
            let qoz = Qoz::new().with_qp(qp);
            let bytes = qoz.compress(&f, ErrorBound::Abs(1e-3)).unwrap();
            let out = qoz.decompress(&bytes).unwrap();
            assert!(max_abs_error(&f, &out) <= 1e-3 + 1e-9);
        }
    }

    #[test]
    fn qp_preserves_decompressed_data() {
        let f = smooth(&[36, 28, 18]);
        // Pin α/β so both runs use identical engine parameters.
        let plain = Qoz::new().with_alpha_beta(1.25, 2.0);
        let qp = Qoz::new().with_alpha_beta(1.25, 2.0).with_qp(QpConfig::best_fit());
        let a: Field<f32> =
            plain.decompress(&plain.compress(&f, ErrorBound::Abs(1e-4)).unwrap()).unwrap();
        let b: Field<f32> =
            qp.decompress(&qp.compress(&f, ErrorBound::Abs(1e-4)).unwrap()).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn tuner_respects_pinned_parameters() {
        let f = smooth(&[64, 32, 16]);
        let qoz = Qoz::new().with_alpha_beta(2.0, 4.0);
        assert_eq!(qoz.tune(&f, ErrorBound::Abs(1e-3)), (2.0, 4.0));
    }

    #[test]
    fn tuned_stream_decompresses_with_any_instance() {
        // α/β travel in the stream, so a default-configured instance decodes.
        let f = smooth(&[40, 40, 12]);
        let enc = Qoz::new().with_alpha_beta(2.0, 4.0);
        let bytes = enc.compress(&f, ErrorBound::Abs(1e-3)).unwrap();
        let out: Field<f32> = Qoz::new().decompress(&bytes).unwrap();
        assert!(max_abs_error(&f, &out) <= 1e-3 + 1e-9);
    }

    #[test]
    fn name_reflects_qp() {
        assert_eq!(Compressor::<f32>::name(&Qoz::new()), "QoZ");
        assert_eq!(Compressor::<f32>::name(&Qoz::new().with_qp(QpConfig::best_fit())), "QoZ+QP");
    }

    #[test]
    fn rejects_foreign_streams() {
        let f = smooth(&[16, 16, 8]);
        let sz3_bytes = qip_sz3_stub_stream(&f);
        let res: Result<Field<f32>, _> = Qoz::new().decompress(&sz3_bytes);
        assert!(res.is_err());
    }

    /// A valid stream from a different compressor (just bytes with a wrong magic).
    fn qip_sz3_stub_stream(f: &Field<f32>) -> Vec<u8> {
        let eng = InterpEngine::new(EngineConfig::sz3_like(0x21));
        eng.compress(f, ErrorBound::Abs(1e-3)).unwrap()
    }
}

#[cfg(test)]
mod target_tests {
    use super::*;
    use qip_metrics::{max_abs_error, ssim};
    use qip_tensor::Shape;

    #[test]
    fn ssim_target_roundtrips_with_bound() {
        let f = Field::<f32>::from_fn(Shape::d3(40, 36, 20), |c| {
            (c[0] as f32 * 0.1).sin() + (c[1] as f32 * 0.07).cos() * 0.5 + c[2] as f32 * 0.01
        });
        let qoz = Qoz::new().with_target(TuneTarget::Ssim).with_qp(QpConfig::best_fit());
        let bytes = qoz.compress(&f, ErrorBound::Rel(1e-3)).unwrap();
        let out = qoz.decompress(&bytes).unwrap();
        assert!(max_abs_error(&f, &out) <= 1e-3 * f.value_range() + 1e-9);
        assert!(ssim(&f, &out) > 0.9);
    }

    #[test]
    fn targets_may_pick_different_parameters() {
        // Both targets must at least run the tuner to completion; on most
        // fields they settle on the same (α, β), which is fine.
        let f = Field::<f32>::from_fn(Shape::d3(48, 40, 24), |c| {
            (c[0] as f32 * 0.2).sin() * (c[1] as f32 * 0.15).cos() + c[2] as f32 * 0.05
        });
        let a = Qoz::new().tune(&f, ErrorBound::Rel(1e-3));
        let b = Qoz::new().with_target(TuneTarget::Ssim).tune(&f, ErrorBound::Rel(1e-3));
        assert!(TUNE_CANDIDATES.contains(&a));
        assert!(TUNE_CANDIDATES.contains(&b));
    }
}

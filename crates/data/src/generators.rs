//! Per-dataset field generators.
//!
//! Coordinates are normalized to `[0, 1]` per axis so the structure is
//! resolution-independent: the same features appear at scaled-down and paper
//! dims, only sampled more or less densely.

use crate::noise::SpectralNoise;
use qip_tensor::{Field, Shape};

/// Clamp a nominal finest wavenumber so features stay resolved (≥ ~6 samples
/// per cycle) at scaled-down grids — real datasets remain smooth at sample
/// scale when downsampled, and the generators must too.
fn resolved_k(dims: &[usize], nominal: f64) -> f64 {
    let max_dim = dims.iter().copied().max().unwrap_or(16) as f64;
    nominal.min((max_dim / 6.0).max(2.0))
}

/// Normalized coordinates of a grid point.
#[inline]
fn norm(c: &[usize], dims: &[usize]) -> (f64, f64, f64) {
    let g = |i: usize| -> f64 {
        if i < dims.len() && dims[i] > 1 {
            c[i] as f64 / (dims[i] - 1) as f64
        } else {
            0.0
        }
    };
    (g(0), g(1), g(2))
}

/// Miranda-like hydrodynamic turbulence: Kolmogorov-spectrum fluctuations on
/// a smooth large-scale profile (density/velocity-style fields).
pub fn miranda_like(seed: u64, dims: &[usize]) -> Field<f32> {
    // Steeper-than-Kolmogorov amplitude slope: Miranda's density/velocity
    // fields are dominated by large eddies and very smooth at sample scale.
    let turb = SpectralNoise::new(seed, 48, 1.5, resolved_k(dims, 32.0), 1.4);
    let large = SpectralNoise::new(seed.wrapping_add(1), 8, 0.5, 2.0, 1.0);
    Field::from_fn(Shape::new(dims), |c| {
        let (x, y, z) = norm(c, dims);
        let base = 1.0 + 0.6 * large.eval(x, y, z);
        (base + 0.2 * turb.eval(x, y, z)) as f32
    })
}

/// Hurricane-like weather field: a vortex with an eye, vertical shear and
/// mesoscale noise (wind-speed-style variable).
pub fn hurricane_like(seed: u64, dims: &[usize]) -> Field<f32> {
    let meso = SpectralNoise::new(seed, 32, 2.0, resolved_k(dims, 24.0), 1.0);
    // Axis 0 is the (shallow) vertical in the paper layout 100×500×500.
    Field::from_fn(Shape::new(dims), |c| {
        let (z, y, x) = norm(c, dims);
        let (cx, cy) = (0.45 + 0.1 * (seed % 3) as f64 * 0.1, 0.55);
        let r = ((x - cx).powi(2) + (y - cy).powi(2)).sqrt();
        // Rankine-like tangential wind profile with an eye at r0.
        let r0 = 0.06 + 0.01 * (seed % 5) as f64;
        let v = if r < r0 { r / r0 } else { (r0 / r).powf(0.6) };
        let shear = 1.0 - 0.5 * z;
        (40.0 * v * shear + 3.0 * meso.eval(x, y, z)) as f32
    })
}

/// SegSalt-like seismic field: layered medium with undulating interfaces, an
/// intrusive salt dome with a sharp boundary, and an oscillatory pressure
/// wavefield — the combination that produces the paper's clustering regions.
pub fn segsalt_like(seed: u64, dims: &[usize]) -> Field<f32> {
    let undulation = SpectralNoise::new(seed, 16, 1.0, 6.0, 1.2);
    let texture = SpectralNoise::new(seed.wrapping_add(9), 24, 3.0, resolved_k(dims, 16.0), 1.2);
    // Paper layout 1008×1008×352: axes (x, y, depth).
    Field::from_fn(Shape::new(dims), |c| {
        let (x, y, z) = norm(c, dims);
        // Layered background velocity/pressure increasing with depth, with
        // interface undulation.
        let warped_depth = z + 0.05 * undulation.eval(x, y, 0.0);
        let layer = (warped_depth * 14.0).floor() / 14.0;
        let mut v = 1.5 + 2.5 * layer;
        // Salt dome: ellipsoid with a sharp contrast.
        let d = ((x - 0.5) / 0.28).powi(2) + ((y - 0.5) / 0.24).powi(2)
            + ((z - 0.75) / 0.35).powi(2);
        if d < 1.0 {
            v = 4.8;
        }
        // Oscillatory wavefield superimposed (pressure snapshot).
        let r = ((x - 0.5).powi(2) + (y - 0.45).powi(2) + (z - 0.2).powi(2)).sqrt();
        let wave = (60.0 * (r - 0.35)).sin() * (-((r - 0.35) / 0.18).powi(2)).exp();
        (v + 0.8 * wave + 0.02 * texture.eval(x, y, z)) as f32
    })
}

/// SCALE-like regional weather field: synoptic gradients plus convective
/// plumes (localized bumps) and boundary-layer noise.
pub fn scale_like(seed: u64, dims: &[usize]) -> Field<f32> {
    let synoptic = SpectralNoise::new(seed, 8, 0.5, 3.0, 1.0);
    let bl = SpectralNoise::new(seed.wrapping_add(3), 32, 4.0, resolved_k(dims, 48.0), 1.0);
    // Plume centers, deterministic from seed.
    let plumes: Vec<(f64, f64, f64)> = (0..10)
        .map(|i| {
            let h = seed.wrapping_mul(0x9E37).wrapping_add(i * 2_654_435_761);
            let px = ((h >> 8) % 1000) as f64 / 1000.0;
            let py = ((h >> 24) % 1000) as f64 / 1000.0;
            let amp = 0.5 + ((h >> 40) % 100) as f64 / 100.0;
            (px, py, amp)
        })
        .collect();
    // Paper layout 98×1200×1200: (vertical, y, x).
    Field::from_fn(Shape::new(dims), |c| {
        let (z, y, x) = norm(c, dims);
        let mut v = 290.0 - 25.0 * z + 4.0 * synoptic.eval(x, y, z);
        for &(px, py, amp) in &plumes {
            let d2 = ((x - px).powi(2) + (y - py).powi(2)) / 0.004;
            if d2 < 12.0 {
                // Plumes decay with altitude.
                v += amp * 6.0 * (-d2).exp() * (1.0 - z).max(0.0);
            }
        }
        (v + 0.4 * bl.eval(x, y, z) * (1.0 - z)) as f32
    })
}

/// S3D-like combustion field (double precision): wrinkled flame fronts
/// separating burnt/unburnt regions, plus fine-scale turbulence.
pub fn s3d_like(seed: u64, dims: &[usize]) -> Field<f64> {
    let wrinkle = SpectralNoise::new(seed, 24, 2.0, 16.0, 1.0);
    let turb = SpectralNoise::new(seed.wrapping_add(5), 32, 4.0, resolved_k(dims, 64.0), 5.0 / 6.0);
    Field::from_fn(Shape::new(dims), |c| {
        let (x, y, z) = norm(c, dims);
        // Flame surface around x = 0.5, wrinkled by the noise.
        let front = 0.5 + 0.08 * wrinkle.eval(0.0, y, z);
        let w = 0.015; // flame thickness
        let progress = 1.0 / (1.0 + ((front - x) / w).exp());
        // Temperature-like variable: unburnt 300, burnt 2100, plus small
        // turbulent fluctuations on the burnt side.
        300.0 + 1800.0 * progress + 15.0 * progress * turb.eval(x, y, z)
    })
}

/// CESM-like climate slab: strong latitudinal gradient, planetary waves, and
/// weak variation across the thin vertical dimension.
pub fn cesm_like(seed: u64, dims: &[usize]) -> Field<f32> {
    let waves = SpectralNoise::new(seed, 12, 1.0, 6.0, 1.0);
    let fine = SpectralNoise::new(seed.wrapping_add(7), 24, 4.0, resolved_k(dims, 40.0), 1.2);
    // Paper layout 26×1800×3600: (level, lat, lon).
    Field::from_fn(Shape::new(dims), |c| {
        let (lev, lat, lon) = norm(c, dims);
        let latitude = (lat - 0.5) * std::f64::consts::PI; // −π/2 .. π/2
        let mut v = 255.0 + 45.0 * latitude.cos(); // warm equator
        v += 6.0 * waves.eval(lon, lat, 0.0); // planetary waves
        v += 1.5 * fine.eval(lon, lat, lev); // weather noise
        v -= 20.0 * lev; // lapse with model level
        v as f32
    })
}

/// RTM-like wavefield snapshot `t` (of a nominal 3600-step simulation):
/// an expanding spherical wavefront in a layered medium with reflections.
pub fn rtm_like(seed: u64, t: usize, dims: &[usize]) -> Field<f32> {
    let hetero = SpectralNoise::new(seed.wrapping_add(11), 16, 2.0, resolved_k(dims, 12.0), 1.0);
    let ct = 0.05 + 0.9 * (t % 3600) as f64 / 3600.0; // front radius
    Field::from_fn(Shape::new(dims), |c| {
        let (x, y, z) = norm(c, dims);
        let r = ((x - 0.5).powi(2) + (y - 0.5).powi(2) + (z - 0.1).powi(2)).sqrt();
        // Primary front.
        let front = (80.0 * (r - ct)).sin() * (-((r - ct) / 0.05).powi(2)).exp();
        // Reflection off the mid-depth interface (weaker, lagging).
        let rr = ((x - 0.5).powi(2) + (y - 0.5).powi(2) + (z - 0.9).powi(2)).sqrt();
        let refl = 0.4 * (80.0 * (rr - ct * 0.8)).sin() * (-((rr - ct * 0.8) / 0.05).powi(2)).exp();
        ((front + refl) * (1.0 + 0.1 * hetero.eval(x, y, z))) as f32
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segsalt_has_sharp_dome_boundary() {
        // Values inside the dome are constant-ish; a traverse crossing the
        // boundary must show a jump larger than the in-dome variation.
        let dims = [48usize, 48, 32];
        let f = segsalt_like(17, &dims);
        // Traverse along x at y = center, depth z-index 24 (≈ 0.77 deep).
        let mut vals = Vec::new();
        for x in 0..48 {
            vals.push(f.get(&[x, 24, 24]) as f64);
        }
        let max_jump = vals.windows(2).map(|w| (w[1] - w[0]).abs()).fold(0.0, f64::max);
        assert!(max_jump > 0.5, "expected a sharp interface, max jump {max_jump}");
    }

    #[test]
    fn s3d_flame_has_two_plateaus() {
        let dims = [64usize, 16, 16];
        let f = s3d_like(3, &dims);
        let unburnt = f.get(&[2, 8, 8]);
        let burnt = f.get(&[61, 8, 8]);
        assert!(unburnt < 500.0, "unburnt side {unburnt}");
        assert!(burnt > 1800.0, "burnt side {burnt}");
    }

    #[test]
    fn hurricane_eye_is_calm() {
        let dims = [16usize, 64, 64];
        let f = hurricane_like(0, &dims);
        // Eye center ≈ (0.45, 0.55) in (x, y) = (axis2, axis1) normalized.
        let eye = f.get(&[8, 35, 28]);
        let wall = f.get(&[8, 35, 33]);
        assert!(eye < wall, "eye {eye} should be calmer than wall {wall}");
    }

    #[test]
    fn cesm_equator_warmer_than_pole() {
        let dims = [8usize, 64, 64];
        let f = cesm_like(0, &dims);
        let equator = f.get(&[0, 32, 10]);
        let pole = f.get(&[0, 0, 10]);
        assert!(equator > pole + 10.0, "equator {equator} pole {pole}");
    }

    #[test]
    fn scale_has_temperature_like_range() {
        let dims = [16usize, 48, 48];
        let f = scale_like(2, &dims);
        let (lo, hi) = f.min_max().unwrap();
        assert!(lo > 200.0 && hi < 350.0, "range [{lo}, {hi}]");
    }

    #[test]
    fn rtm_front_moves_outward() {
        let dims = [32usize, 32, 32];
        let early = rtm_like(0, 200, &dims);
        let late = rtm_like(0, 2000, &dims);
        // Energy near the source is higher early than late.
        let near = |f: &Field<f32>| -> f64 {
            let mut acc = 0.0;
            for i in 12..20 {
                acc += (f.get(&[i, 16, 6]) as f64).abs();
            }
            acc
        };
        assert!(near(&early) > near(&late) * 0.5);
    }

    #[test]
    fn miranda_multiscale() {
        // Turbulence must contain energy at fine scales: decimation should
        // lose detail (decimated field differs from a smooth interpolation).
        let dims = [48usize, 48, 48];
        let f = miranda_like(1, &dims);
        let mut fine_diff = 0.0f64;
        for i in 0..47 {
            fine_diff += (f.get(&[i + 1, 24, 24]) as f64 - f.get(&[i, 24, 24]) as f64).abs();
        }
        assert!(fine_diff > 0.5, "turbulence too smooth: {fine_diff}");
    }
}

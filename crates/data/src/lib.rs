//! Synthetic scientific datasets (the paper-dataset substitution layer).
//!
//! The paper evaluates on seven real datasets (Table III) totalling >600 GB
//! that are not available offline. This crate generates deterministic fields
//! reproducing the *statistical structure* each compressor responds to — the
//! spectra, fronts, layers and vortices that determine interpolation residual
//! behaviour — at paper shapes or scaled-down versions of them. See
//! DESIGN.md §5 for the substitution rationale.
//!
//! | dataset | structure reproduced |
//! |---|---|
//! | Miranda | k^−5/3 spectral turbulence (hydrodynamics) |
//! | Hurricane | vortex flow with an eye and vertical shear (weather) |
//! | SegSalt | layered geology + salt dome + seismic wavefield (the source of the paper's clustering regions) |
//! | SCALE | convective plumes over smooth synoptic gradients (weather) |
//! | S3D | wrinkled flame fronts, double precision (combustion) |
//! | CESM | thin lat/lon climate slabs (climate) |
//! | RTM | 4-D propagating wavefront time series (seismic imaging) |

#![warn(missing_docs)]

mod generators;
mod noise;

pub use generators::{
    cesm_like, hurricane_like, miranda_like, rtm_like, s3d_like, scale_like, segsalt_like,
};
pub use noise::SpectralNoise;

use qip_tensor::{Field, Shape};

/// The benchmark datasets of the paper's Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Large turbulence simulation (LLNL), 7 fields, f32.
    Miranda,
    /// Hurricane Isabel weather simulation, 13 fields, f32.
    Hurricane,
    /// SEG/EAGE salt and overthrust models, 3 fields, f32.
    SegSalt,
    /// SCALE-RM weather model, 12 fields, f32.
    Scale,
    /// Direct numerical combustion simulation, 11 fields, f64.
    S3d,
    /// CESM-ATM climate model, 33 fields, f32.
    Cesm,
    /// Reverse-time-migration seismic wavefields, 1 field, 4-D f32.
    Rtm,
}

/// All generic-comparison datasets (paper Figures 10–15 order).
pub const RD_DATASETS: [Dataset; 6] = [
    Dataset::Miranda,
    Dataset::SegSalt,
    Dataset::Scale,
    Dataset::Cesm,
    Dataset::S3d,
    Dataset::Hurricane,
];

impl Dataset {
    /// Dataset name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Miranda => "Miranda",
            Dataset::Hurricane => "Hurricane",
            Dataset::SegSalt => "SegSalt",
            Dataset::Scale => "SCALE",
            Dataset::S3d => "S3D",
            Dataset::Cesm => "CESM-3D",
            Dataset::Rtm => "RTM",
        }
    }

    /// Paper dimensions (Table III).
    pub fn paper_dims(&self) -> Vec<usize> {
        match self {
            Dataset::Miranda => vec![256, 384, 384],
            Dataset::Hurricane => vec![100, 500, 500],
            Dataset::SegSalt => vec![1008, 1008, 352],
            Dataset::Scale => vec![98, 1200, 1200],
            Dataset::S3d => vec![500, 500, 500],
            Dataset::Cesm => vec![26, 1800, 3600],
            Dataset::Rtm => vec![3600, 449, 449, 235],
        }
    }

    /// Number of fields (Table III).
    pub fn n_fields(&self) -> usize {
        match self {
            Dataset::Miranda => 7,
            Dataset::Hurricane => 13,
            Dataset::SegSalt => 3,
            Dataset::Scale => 12,
            Dataset::S3d => 11,
            Dataset::Cesm => 33,
            Dataset::Rtm => 1,
        }
    }

    /// True for the double-precision dataset (S3D).
    pub fn is_double(&self) -> bool {
        matches!(self, Dataset::S3d)
    }

    /// Paper dims divided by `factor` per axis (clamped to ≥ 16), the default
    /// experiment scale. `factor = 1` restores paper shapes.
    pub fn scaled_dims(&self, factor: usize) -> Vec<usize> {
        self.paper_dims()
            .iter()
            .map(|&d| (d / factor.max(1)).max(16.min(d)))
            .collect()
    }

    /// Physically-flavored name of field `index` (cycles past the catalog).
    pub fn field_name(&self, index: usize) -> String {
        let catalog: &[&str] = match self {
            Dataset::Miranda => {
                &["velocityx", "velocityy", "velocityz", "density", "pressure", "energy", "viscocity"]
            }
            Dataset::Hurricane => {
                &["U", "V", "W", "TC", "P", "QVAPOR", "QCLOUD", "QICE", "QRAIN", "QSNOW", "QGRAUP", "CLOUD", "PRECIP"]
            }
            Dataset::SegSalt => &["Pressure2000", "Pressure3000", "Velocity"],
            Dataset::Scale => {
                &["T", "U", "V", "W", "QV", "QC", "QR", "QI", "QS", "QG", "RH", "PRES"]
            }
            Dataset::S3d => {
                &["T", "OH", "H2O", "CO2", "CO", "H2", "O2", "CH4", "HO2", "N2", "pressure"]
            }
            Dataset::Cesm => &["TS", "T850", "PSL", "U850", "V850", "Q850"],
            Dataset::Rtm => &["snapshot"],
        };
        if index < self.n_fields() {
            catalog.get(index % catalog.len()).unwrap_or(&"field").to_string()
        } else {
            format!("field{index}")
        }
    }

    /// Generate field `index` of this dataset at the given 3-D dims as `f32`
    /// (valid for every dataset but S3D; RTM yields time-slice `index`).
    pub fn generate_f32(&self, index: usize, dims: &[usize]) -> Field<f32> {
        let seed = (index as u64) * 7919 + 17;
        match self {
            // Miranda: velocity components are signed and zero-mean, density
            // and pressure positive with an offset — the same split the real
            // dataset shows across its seven fields.
            Dataset::Miranda => {
                let f = miranda_like(seed, dims);
                let shape = f.shape().clone();
                if index < 3 {
                    let data: Vec<f32> =
                        f.as_slice().iter().map(|&v| (v - 1.0) * 2.0).collect();
                    Field::from_vec(shape, data).expect("shape preserved")
                } else {
                    // Density/pressure/energy are strictly positive in the
                    // real dataset; an exponential remap keeps the turbulent
                    // structure smooth while pinning the field above zero
                    // regardless of how deep the spectral noise swings.
                    let data: Vec<f32> =
                        f.as_slice().iter().map(|&v| (v - 1.0).exp()).collect();
                    Field::from_vec(shape, data).expect("shape preserved")
                }
            }
            Dataset::Hurricane => hurricane_like(seed, dims),
            Dataset::SegSalt => segsalt_like(seed, dims),
            Dataset::Scale => scale_like(seed, dims),
            Dataset::Cesm => cesm_like(seed, dims),
            Dataset::Rtm => rtm_like(seed, index, dims),
            Dataset::S3d => {
                let f = s3d_like(seed, dims);
                let shape = f.shape().clone();
                let data: Vec<f32> = f.as_slice().iter().map(|&v| v as f32).collect();
                Field::from_vec(shape, data).expect("shape preserved")
            }
        }
    }

    /// Generate field `index` as `f64` (the native type for S3D).
    pub fn generate_f64(&self, index: usize, dims: &[usize]) -> Field<f64> {
        match self {
            Dataset::S3d => s3d_like((index as u64) * 7919 + 17, dims),
            _ => {
                let f = self.generate_f32(index, dims);
                let shape = f.shape().clone();
                let data: Vec<f64> = f.as_slice().iter().map(|&v| v as f64).collect();
                Field::from_vec(shape, data).expect("shape preserved")
            }
        }
    }
}

/// Convenience: an arbitrary smooth test field (used by examples and tests).
pub fn smooth_test_field(dims: &[usize]) -> Field<f32> {
    Field::from_fn(Shape::new(dims), |c| {
        let x = c[0] as f32;
        let y = c.get(1).copied().unwrap_or(0) as f32;
        let z = c.get(2).copied().unwrap_or(0) as f32;
        (0.07 * x).sin() + 0.5 * (0.11 * y).cos() + 0.25 * (0.05 * (x + z)).sin()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dims_match_table3() {
        assert_eq!(Dataset::SegSalt.paper_dims(), vec![1008, 1008, 352]);
        assert_eq!(Dataset::Rtm.paper_dims().len(), 4);
        assert_eq!(Dataset::Miranda.n_fields(), 7);
        assert_eq!(Dataset::Cesm.n_fields(), 33);
        assert!(Dataset::S3d.is_double());
        assert!(!Dataset::Miranda.is_double());
    }

    #[test]
    fn scaled_dims_clamped() {
        let d = Dataset::Cesm.scaled_dims(4);
        assert_eq!(d, vec![16, 450, 900]);
        assert_eq!(Dataset::Miranda.scaled_dims(1), Dataset::Miranda.paper_dims());
    }

    #[test]
    fn generation_deterministic() {
        for ds in RD_DATASETS {
            let dims = [24usize, 20, 18];
            let a = ds.generate_f32(0, &dims);
            let b = ds.generate_f32(0, &dims);
            assert_eq!(a.as_slice(), b.as_slice(), "{}", ds.name());
        }
    }

    #[test]
    fn fields_differ_by_index() {
        let dims = [20usize, 20, 20];
        let a = Dataset::Miranda.generate_f32(0, &dims);
        let b = Dataset::Miranda.generate_f32(1, &dims);
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn fields_are_finite_and_nonconstant() {
        let dims = [20usize, 18, 16];
        for ds in RD_DATASETS {
            for idx in 0..2 {
                let f = ds.generate_f32(idx, &dims);
                assert!(f.as_slice().iter().all(|v| v.is_finite()), "{}", ds.name());
                assert!(f.value_range() > 0.0, "{} field {idx} constant", ds.name());
            }
        }
    }

    #[test]
    fn s3d_native_double() {
        let f = Dataset::S3d.generate_f64(0, &[16, 16, 16]);
        assert!(f.value_range() > 0.0);
    }

    #[test]
    fn field_names_follow_table3_counts() {
        assert_eq!(Dataset::SegSalt.field_name(0), "Pressure2000");
        assert_eq!(Dataset::Miranda.field_name(0), "velocityx");
        assert_eq!(Dataset::Miranda.field_name(3), "density");
        assert_eq!(Dataset::Rtm.field_name(0), "snapshot");
        // Beyond the catalog: synthetic names, never a panic.
        assert_eq!(Dataset::Rtm.field_name(99), "field99");
    }

    #[test]
    fn miranda_velocity_signed_density_positive() {
        let dims = [24usize, 24, 24];
        let vel = Dataset::Miranda.generate_f32(0, &dims);
        let den = Dataset::Miranda.generate_f32(3, &dims);
        let (vlo, _) = vel.min_max().unwrap();
        let (dlo, _) = den.min_max().unwrap();
        assert!(vlo < 0.0, "velocity should be signed, min {vlo}");
        assert!(dlo > -0.5, "density should be near-positive, min {dlo}");
    }

    #[test]
    fn rtm_time_slices_evolve() {
        let dims = [32usize, 32, 24];
        let t0 = Dataset::Rtm.generate_f32(0, &dims);
        let t5 = Dataset::Rtm.generate_f32(5, &dims);
        assert_ne!(t0.as_slice(), t5.as_slice());
    }
}

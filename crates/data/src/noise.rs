//! Deterministic spectral noise for field synthesis.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A band-limited random field synthesized as a sum of plane waves with a
/// power-law amplitude spectrum: `f(x) = Σ_m A_m · sin(k_m · x + φ_m)` with
/// `A_m ∝ |k_m|^(−slope)`. With `slope = 5/6` the *energy* spectrum follows
/// Kolmogorov's `k^(−5/3)` (amplitude² per mode).
#[derive(Debug, Clone)]
pub struct SpectralNoise {
    modes: Vec<Mode>,
}

#[derive(Debug, Clone, Copy)]
struct Mode {
    kx: f64,
    ky: f64,
    kz: f64,
    amp: f64,
    phase: f64,
}

impl SpectralNoise {
    /// Build `n_modes` modes with wavenumbers log-uniform in
    /// `[k_min, k_max]` (cycles per unit coordinate) and the given spectral
    /// slope, deterministically from `seed`.
    pub fn new(seed: u64, n_modes: usize, k_min: f64, k_max: f64, slope: f64) -> Self {
        assert!(k_min > 0.0);
        // Tiny grids can push the resolved band below k_min; degrade to a
        // single-band field rather than failing.
        let k_max = k_max.max(k_min);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut modes = Vec::with_capacity(n_modes);
        for _ in 0..n_modes {
            let u: f64 = rng.gen();
            let k = k_min * (k_max / k_min).powf(u);
            // Random direction on the sphere.
            let z: f64 = rng.gen_range(-1.0..1.0);
            let az: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let r = (1.0 - z * z).sqrt();
            let (dx, dy, dz) = (r * az.cos(), r * az.sin(), z);
            let tau = std::f64::consts::TAU;
            modes.push(Mode {
                kx: tau * k * dx,
                ky: tau * k * dy,
                kz: tau * k * dz,
                amp: k.powf(-slope),
                phase: rng.gen_range(0.0..tau),
            });
        }
        // Normalize so the field has O(1) RMS.
        let energy: f64 = modes.iter().map(|m| 0.5 * m.amp * m.amp).sum();
        let scale = if energy > 0.0 { 1.0 / energy.sqrt() } else { 1.0 };
        for m in &mut modes {
            m.amp *= scale;
        }
        SpectralNoise { modes }
    }

    /// Evaluate at a (normalized) coordinate.
    #[inline]
    pub fn eval(&self, x: f64, y: f64, z: f64) -> f64 {
        let mut acc = 0.0;
        for m in &self.modes {
            acc += m.amp * (m.kx * x + m.ky * y + m.kz * z + m.phase).sin();
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = SpectralNoise::new(7, 20, 1.0, 16.0, 5.0 / 6.0);
        let b = SpectralNoise::new(7, 20, 1.0, 16.0, 5.0 / 6.0);
        assert_eq!(a.eval(0.3, 0.7, 0.1), b.eval(0.3, 0.7, 0.1));
    }

    #[test]
    fn different_seeds_differ() {
        let a = SpectralNoise::new(1, 20, 1.0, 16.0, 5.0 / 6.0);
        let b = SpectralNoise::new(2, 20, 1.0, 16.0, 5.0 / 6.0);
        assert_ne!(a.eval(0.5, 0.5, 0.5), b.eval(0.5, 0.5, 0.5));
    }

    #[test]
    fn rms_is_order_one() {
        let n = SpectralNoise::new(3, 48, 1.0, 32.0, 5.0 / 6.0);
        let mut sum2 = 0.0;
        let samples = 4096;
        for i in 0..samples {
            let t = i as f64 / samples as f64;
            let v = n.eval(t, (t * 13.7).fract(), (t * 29.3).fract());
            sum2 += v * v;
        }
        let rms = (sum2 / samples as f64).sqrt();
        assert!(rms > 0.2 && rms < 3.0, "rms {rms}");
    }

    #[test]
    fn continuity() {
        // Band-limited ⇒ small steps change the value slightly.
        let n = SpectralNoise::new(5, 32, 1.0, 8.0, 5.0 / 6.0);
        let a = n.eval(0.5, 0.5, 0.5);
        let b = n.eval(0.5005, 0.5, 0.5);
        assert!((a - b).abs() < 0.2);
    }
}

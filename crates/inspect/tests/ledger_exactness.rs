//! Ledger exactness over every committed fixture: for all 66 golden flat
//! streams and all 10 tiled containers, the forensic ledger's components must
//! sum to the stream length *exactly*, the report JSON must be byte-identical
//! across repeated inspections, and the error budget against the pinned
//! input must show zero bound violations.
//!
//! CI runs this suite at `RAYON_NUM_THREADS=1` and `=8`; byte-identical JSON
//! across those runs is the thread-determinism pin.

use qip_conformance::golden::{default_dir, vector_specs};
use qip_conformance::tiles::{tiled_specs, TILE_EDGE};
use qip_conformance::{synth, FieldFamily};
use qip_inspect::{inspect_bytes, inspect_bytes_with_original, InspectReport};

fn read_fixture(stem: &str) -> Vec<u8> {
    let path = default_dir().join(format!("{stem}.bin"));
    std::fs::read(&path).unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()))
}

fn check_flat(
    stem: &str,
    bytes: &[u8],
    dtype: &str,
    family: FieldFamily,
    seed: u64,
    dims: &[usize],
) -> InspectReport {
    let report = inspect_bytes(bytes).unwrap_or_else(|e| panic!("{stem}: inspect failed: {e}"));
    assert_eq!(
        report.ledger_total(),
        bytes.len() as u64,
        "{stem}: ledger does not sum to the stream length ({:?})",
        report.ledger
    );
    assert_eq!(report.dims, dims, "{stem}");
    // Determinism: inspecting the same bytes twice yields identical JSON.
    let again = inspect_bytes(bytes).unwrap();
    assert_eq!(report.to_json(), again.to_json(), "{stem}: non-deterministic report");

    // Error budget against the pinned input: zero violations, finite stats.
    let budget = match dtype {
        "f64" => {
            let field = synth::<f64>(family, seed, dims);
            inspect_bytes_with_original(bytes, &field).unwrap().error_budget.unwrap()
        }
        _ => {
            let field = synth::<f32>(family, seed, dims);
            inspect_bytes_with_original(bytes, &field).unwrap().error_budget.unwrap()
        }
    };
    assert_eq!(budget.violations, 0, "{stem}: error bound violated");
    assert!(budget.max_margin <= 1.0 + 1e-9, "{stem}: margin {}", budget.max_margin);
    let n: u64 = dims.iter().product::<usize>() as u64;
    assert_eq!(budget.margin_histogram.iter().sum::<u64>(), n, "{stem}");
    report
}

#[test]
fn golden_vectors_ledger_exact() {
    let specs = vector_specs();
    assert_eq!(specs.len(), 66, "golden grid drifted; update this suite");
    for (_, spec) in &specs {
        let stem = spec.stem();
        let bytes = read_fixture(&stem);
        let report =
            check_flat(&stem, &bytes, spec.dtype, spec.family, spec.seed, &spec.dims);
        // Every QP-capable stream reports per-level decision counters that
        // tile the field, and a priced index cost.
        if let Some(qp) = &report.qp {
            let points: u64 = qp.levels.iter().map(|l| l.points).sum();
            let n: u64 = spec.dims.iter().product::<usize>() as u64;
            assert_eq!(points + qp.anchors, n, "{stem}: levels do not tile the field");
            for l in &qp.levels {
                assert!(l.accepted <= l.points && l.fired <= l.accepted, "{stem}");
                assert!(l.index_bits >= 0.0, "{stem}");
            }
            let priced: f64 = qp.levels.iter().map(|l| l.index_bits).sum();
            let index_bytes: u64 = report.component_bytes("index.payload")
                + report.component_bytes("index.tables")
                + report.component_bytes("index.framing")
                + report.component_bytes("index");
            if index_bytes > 0 && qp.levels.iter().all(|l| l.bits_exact) {
                // Exact Huffman pricing can never exceed the payload bits.
                assert!(
                    priced <= (index_bytes * 8) as f64 + 1.0,
                    "{stem}: priced {priced} bits vs {index_bytes} payload bytes"
                );
            }
        }
    }
}

#[test]
fn golden_vectors_cover_all_eleven_compressors() {
    let mut names: Vec<String> =
        vector_specs().iter().map(|(_, s)| s.compressor.clone()).collect();
    names.sort();
    names.dedup();
    assert_eq!(names.len(), 11, "expected all 11 registry compressors: {names:?}");
}

#[test]
fn tiled_fixtures_ledger_exact() {
    let specs = tiled_specs();
    assert_eq!(specs.len(), 10, "tiled grid drifted; update this suite");
    for spec in &specs {
        let stem = spec.stem();
        let bytes = read_fixture(&stem);
        let report = inspect_bytes(&bytes).unwrap_or_else(|e| panic!("{stem}: {e}"));
        assert_eq!(
            report.ledger_total(),
            bytes.len() as u64,
            "{stem}: tiled ledger does not sum ({:?})",
            report.ledger
        );
        assert_eq!(report.kind, "tiled", "{stem}");
        let rollup = report.tiles.as_ref().unwrap_or_else(|| panic!("{stem}: no rollup"));
        // 21×17 at tile edge 8 → 3×3 grid.
        let expect: usize =
            spec.dims.iter().map(|&d| d.div_ceil(TILE_EDGE)).product();
        assert_eq!(rollup.tiles, expect, "{stem}");
        assert!(rollup.min_tile_bytes <= rollup.median_tile_bytes, "{stem}");
        assert!(rollup.median_tile_bytes <= rollup.max_tile_bytes, "{stem}");
        assert_eq!(rollup.by_compressor.len(), 1, "{stem}");
        assert_eq!(rollup.by_compressor[0].0, spec.compressor, "{stem}");

        // Container components are present and the per-tile rollup accounts
        // for the whole payload.
        let container_overhead =
            report.component_bytes("container.header") + report.component_bytes("container.index");
        assert_eq!(
            container_overhead + rollup.by_compressor[0].2,
            bytes.len() as u64,
            "{stem}: container overhead + tile bytes must cover the stream"
        );

        // Determinism across repeated inspections.
        assert_eq!(report.to_json(), inspect_bytes(&bytes).unwrap().to_json(), "{stem}");

        // Error budget against the pinned input.
        let budget = match spec.dtype {
            "f64" => {
                let field = synth::<f64>(spec.family, spec.seed, &spec.dims);
                inspect_bytes_with_original(&bytes, &field).unwrap().error_budget.unwrap()
            }
            _ => {
                let field = synth::<f32>(spec.family, spec.seed, &spec.dims);
                inspect_bytes_with_original(&bytes, &field).unwrap().error_budget.unwrap()
            }
        };
        assert_eq!(budget.violations, 0, "{stem}");
    }
}

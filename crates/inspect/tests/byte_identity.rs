//! Inspection must never change compressed bytes or reconstruction:
//!
//! - compressing, inspecting, then compressing again yields byte-identical
//!   streams (inspection has no side effects on any encoder state);
//! - the forensic decode reconstructs *exactly* the field a plain decompress
//!   produces (pinned by inspecting a stream against its own plain
//!   decompression: every pointwise error must be exactly zero);
//! - reports are byte-identical under either runtime kernel mode (the
//!   forensic path always runs the scalar reference driver).

use qip_core::{Compressor, ErrorBound};
use qip_inspect::{inspect_bytes, inspect_bytes_with_original, InspectExt};
use qip_registry::AnyCompressor;
use qip_tensor::{Field, Scalar, Shape};

fn banded<T: Scalar>(dims: &[usize]) -> Field<T> {
    let n: usize = dims.iter().product();
    let data: Vec<T> = (0..n)
        .map(|i| T::from_f64(((i % 29) as f64 * 0.17).sin() + (i / 31) as f64 * 0.013))
        .collect();
    Field::from_vec(Shape::new(dims), data).unwrap()
}

#[test]
fn inspection_never_changes_compressed_bytes() {
    let field: Field<f32> = banded(&[19, 14]);
    for comp in AnyCompressor::registry() {
        let name = comp.as_dyn::<f32>().name();
        let first = comp.as_dyn::<f32>().compress(&field, ErrorBound::Abs(1e-3)).unwrap();
        let _ = comp.inspect(&first).unwrap();
        let _ = comp.inspect_with_original(&first, &field).unwrap();
        let second = comp.as_dyn::<f32>().compress(&field, ErrorBound::Abs(1e-3)).unwrap();
        assert_eq!(first, second, "{name}: inspection perturbed the encoder");
    }
}

#[test]
fn forensic_decode_matches_plain_decompress_exactly() {
    for dims in [&[48][..], &[15, 11][..], &[9, 8, 7][..]] {
        let field: Field<f64> = banded(dims);
        for comp in AnyCompressor::registry() {
            let name = comp.as_dyn::<f64>().name();
            let bytes = comp.as_dyn::<f64>().compress(&field, ErrorBound::Abs(1e-3)).unwrap();
            let plain: Field<f64> = comp.as_dyn::<f64>().decompress(&bytes).unwrap();
            // Inspect against the plain decompression: the forensic (or
            // fallback) reconstruction must agree bit-for-bit, so every
            // pointwise error is exactly zero.
            let report = inspect_bytes_with_original(&bytes, &plain).unwrap();
            let budget = report.error_budget.unwrap();
            assert_eq!(
                budget.max_abs_error, 0.0,
                "{name} {dims:?}: forensic decode diverges from plain decompress"
            );
        }
    }
}

#[test]
fn reports_identical_under_either_kernel_mode() {
    let field: Field<f32> = banded(&[17, 12]);
    let comp = AnyCompressor::by_name("HPEZ+QP").unwrap();
    let bytes = comp.as_dyn::<f32>().compress(&field, ErrorBound::Abs(1e-3)).unwrap();
    let before = qip_interp::kernel_mode();
    qip_interp::set_kernel_mode(qip_interp::KernelMode::ScalarRef);
    let scalar = inspect_bytes(&bytes).unwrap().to_json();
    qip_interp::set_kernel_mode(qip_interp::KernelMode::Chunked);
    let chunked = inspect_bytes(&bytes).unwrap().to_json();
    qip_interp::set_kernel_mode(before);
    assert_eq!(scalar, chunked, "kernel switch leaked into the forensic report");
}

#[test]
fn tiled_container_byte_identity() {
    let field: Field<f32> = banded(&[21, 17]);
    let inner = AnyCompressor::by_name("QoZ+QP").unwrap();
    let tiled = qip_container::TiledCompressor::new(inner, 8).unwrap();
    let first = tiled.compress(&field, ErrorBound::Abs(1e-3)).unwrap();
    let report = inspect_bytes_with_original(&first, &field).unwrap();
    assert_eq!(report.ledger_total(), first.len() as u64);
    assert_eq!(report.error_budget.unwrap().violations, 0);
    let second = tiled.compress(&field, ErrorBound::Abs(1e-3)).unwrap();
    assert_eq!(first, second, "inspection perturbed the tiled encoder");
}

//! Terminal rendering for [`InspectReport`]: a fixed-width component ledger
//! plus the QP / tile / error-budget summaries the CLI prints.

use crate::InspectReport;
use std::fmt::Write as _;

/// Render the report as an aligned plain-text table.
pub fn render_table(r: &InspectReport) -> String {
    let mut out = String::with_capacity(1024);
    let dims: Vec<String> = r.dims.iter().map(|d| d.to_string()).collect();
    let _ = writeln!(
        out,
        "{} stream ({}-bit, {}), {} bytes for {} raw ({:.2}x), abs bound {:e}",
        r.compressor,
        r.scalar_bits,
        dims.join("x"),
        r.stream_bytes,
        r.raw_bytes,
        r.ratio,
        r.abs_bound,
    );
    let _ = writeln!(out, "  {:<18} {:>12} {:>8}", "component", "bytes", "share");
    for e in &r.ledger {
        let share = if r.stream_bytes > 0 {
            e.bytes as f64 / r.stream_bytes as f64 * 100.0
        } else {
            0.0
        };
        let _ = writeln!(out, "  {:<18} {:>12} {:>7.2}%", e.component, e.bytes, share);
    }
    let _ = writeln!(out, "  {:<18} {:>12} {:>7.2}%", "total", r.ledger_total(), 100.0);

    if let Some(qp) = &r.qp {
        let _ = writeln!(
            out,
            "QP {} — anchors {}, unpredictable {}",
            if qp.enabled { "enabled" } else { "disabled" },
            qp.anchors,
            qp.unpredictable,
        );
        if !qp.levels.is_empty() {
            let _ = writeln!(
                out,
                "  {:<6} {:>10} {:>10} {:>8} {:>8} {:>8} {:>12}",
                "level", "points", "accepted", "fired", "acc%", "fire%", "index bits"
            );
            for l in &qp.levels {
                let _ = writeln!(
                    out,
                    "  {:<6} {:>10} {:>10} {:>8} {:>7.1}% {:>7.1}% {:>11.0}{}",
                    l.level,
                    l.points,
                    l.accepted,
                    l.fired,
                    l.accept_rate * 100.0,
                    l.fire_rate * 100.0,
                    l.index_bits,
                    if l.bits_exact { " " } else { "~" },
                );
            }
        }
    }

    if let Some(t) = &r.tiles {
        let _ = writeln!(
            out,
            "tiles: {} (bytes min {} / median {} / max {})",
            t.tiles, t.min_tile_bytes, t.median_tile_bytes, t.max_tile_bytes
        );
        for (name, tiles, bytes) in &t.by_compressor {
            let _ = writeln!(out, "  {name}: {tiles} tiles, {bytes} bytes");
        }
    }

    if let Some(e) = &r.error_budget {
        let _ = writeln!(
            out,
            "error budget: max |err| {:e} ({:.1}% of bound), mean margin {:.3}, violations {}",
            e.max_abs_error,
            e.max_margin * 100.0,
            e.mean_margin,
            e.violations,
        );
        if e.psnr.is_finite() {
            let _ = writeln!(out, "  PSNR {:.2} dB", e.psnr);
        }
        for (lvl, p) in &e.level_psnr {
            if p.is_finite() {
                let _ = writeln!(out, "  level {lvl}: PSNR {p:.2} dB");
            }
        }
        let total: u64 = e.margin_histogram.iter().sum();
        if total > 0 {
            let _ = writeln!(out, "  |err|/bound histogram (10 buckets over [0,1]):");
            let width = 32usize;
            let max = e.margin_histogram.iter().copied().max().unwrap_or(1).max(1);
            for (i, &count) in e.margin_histogram.iter().enumerate() {
                let bar = (count as usize * width / max as usize).min(width);
                let _ = writeln!(
                    out,
                    "    {:>3.1}-{:<3.1} {:>10} {}",
                    i as f64 / 10.0,
                    (i + 1) as f64 / 10.0,
                    count,
                    "#".repeat(bar),
                );
            }
        }
    }
    out
}

//! Hand-rolled deterministic JSON for [`InspectReport`].
//!
//! The report is the unit the test suite pins byte-for-byte across runs and
//! thread counts, so serialization must be fully deterministic: fixed key
//! order, no maps, shortest-roundtrip float formatting (Rust's `{}` for
//! `f64`), and non-finite values rendered as `null` (JSON has no NaN).

use crate::{ErrorBudget, Heatmap, InspectReport, LevelReport, QpReport, TileRollup};

/// Serialize a report. Keys appear in declaration order of the structs.
pub fn report_to_json(r: &InspectReport) -> String {
    let mut s = String::with_capacity(1024);
    s.push('{');
    kv_str(&mut s, "kind", r.kind);
    s.push(',');
    kv_str(&mut s, "compressor", &r.compressor);
    s.push(',');
    kv_u64(&mut s, "scalar_bits", r.scalar_bits as u64);
    s.push(',');
    key(&mut s, "dims");
    usize_array(&mut s, &r.dims);
    s.push(',');
    kv_u64(&mut s, "stream_bytes", r.stream_bytes);
    s.push(',');
    kv_u64(&mut s, "raw_bytes", r.raw_bytes);
    s.push(',');
    kv_f64(&mut s, "ratio", r.ratio);
    s.push(',');
    kv_f64(&mut s, "abs_bound", r.abs_bound);
    s.push(',');
    key(&mut s, "ledger");
    s.push('[');
    for (i, e) in r.ledger.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('{');
        kv_str(&mut s, "component", &e.component);
        s.push(',');
        kv_u64(&mut s, "bytes", e.bytes);
        s.push('}');
    }
    s.push(']');
    s.push(',');
    key(&mut s, "qp");
    match &r.qp {
        None => s.push_str("null"),
        Some(qp) => qp_json(&mut s, qp),
    }
    s.push(',');
    key(&mut s, "heatmap");
    match &r.heatmap {
        None => s.push_str("null"),
        Some(h) => heatmap_json(&mut s, h),
    }
    s.push(',');
    key(&mut s, "tiles");
    match &r.tiles {
        None => s.push_str("null"),
        Some(t) => tiles_json(&mut s, t),
    }
    s.push(',');
    key(&mut s, "error_budget");
    match &r.error_budget {
        None => s.push_str("null"),
        Some(e) => budget_json(&mut s, e),
    }
    s.push('}');
    s
}

fn qp_json(s: &mut String, qp: &QpReport) {
    s.push('{');
    kv_bool(s, "enabled", qp.enabled);
    s.push(',');
    key(s, "levels");
    s.push('[');
    for (i, l) in qp.levels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        level_json(s, l);
    }
    s.push(']');
    s.push(',');
    kv_u64(s, "anchors", qp.anchors);
    s.push(',');
    kv_u64(s, "unpredictable", qp.unpredictable);
    s.push('}');
}

fn level_json(s: &mut String, l: &LevelReport) {
    s.push('{');
    kv_u64(s, "level", l.level as u64);
    s.push(',');
    kv_u64(s, "points", l.points);
    s.push(',');
    kv_u64(s, "accepted", l.accepted);
    s.push(',');
    kv_u64(s, "rejected", l.rejected);
    s.push(',');
    kv_u64(s, "fired", l.fired);
    s.push(',');
    kv_f64(s, "accept_rate", l.accept_rate);
    s.push(',');
    kv_f64(s, "fire_rate", l.fire_rate);
    s.push(',');
    kv_f64(s, "index_bits", l.index_bits);
    s.push(',');
    kv_bool(s, "bits_exact", l.bits_exact);
    s.push('}');
}

fn heatmap_json(s: &mut String, h: &Heatmap) {
    s.push('{');
    key(s, "grid");
    usize_array(s, &h.grid);
    s.push(',');
    key(s, "points");
    u64_array(s, &h.points);
    s.push(',');
    key(s, "accepted");
    u64_array(s, &h.accepted);
    s.push(',');
    key(s, "fired");
    u64_array(s, &h.fired);
    s.push('}');
}

fn tiles_json(s: &mut String, t: &TileRollup) {
    s.push('{');
    kv_u64(s, "tiles", t.tiles as u64);
    s.push(',');
    kv_u64(s, "min_tile_bytes", t.min_tile_bytes);
    s.push(',');
    kv_u64(s, "median_tile_bytes", t.median_tile_bytes);
    s.push(',');
    kv_u64(s, "max_tile_bytes", t.max_tile_bytes);
    s.push(',');
    key(s, "by_compressor");
    s.push('[');
    for (i, (name, tiles, bytes)) in t.by_compressor.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('{');
        kv_str(s, "compressor", name);
        s.push(',');
        kv_u64(s, "tiles", *tiles as u64);
        s.push(',');
        kv_u64(s, "bytes", *bytes);
        s.push('}');
    }
    s.push(']');
    s.push('}');
}

fn budget_json(s: &mut String, e: &ErrorBudget) {
    s.push('{');
    kv_f64(s, "bound", e.bound);
    s.push(',');
    kv_f64(s, "max_abs_error", e.max_abs_error);
    s.push(',');
    kv_f64(s, "max_margin", e.max_margin);
    s.push(',');
    kv_f64(s, "mean_margin", e.mean_margin);
    s.push(',');
    kv_u64(s, "violations", e.violations);
    s.push(',');
    key(s, "margin_histogram");
    u64_array(s, &e.margin_histogram);
    s.push(',');
    kv_f64(s, "psnr", e.psnr);
    s.push(',');
    key(s, "level_psnr");
    s.push('[');
    for (i, (lvl, p)) in e.level_psnr.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('{');
        kv_u64(s, "level", *lvl as u64);
        s.push(',');
        kv_f64(s, "psnr", *p);
        s.push('}');
    }
    s.push(']');
    s.push('}');
}

fn key(s: &mut String, k: &str) {
    s.push('"');
    s.push_str(k);
    s.push_str("\":");
}

fn kv_str(s: &mut String, k: &str, v: &str) {
    key(s, k);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}

fn kv_u64(s: &mut String, k: &str, v: u64) {
    key(s, k);
    s.push_str(&v.to_string());
}

fn kv_bool(s: &mut String, k: &str, v: bool) {
    key(s, k);
    s.push_str(if v { "true" } else { "false" });
}

fn kv_f64(s: &mut String, k: &str, v: f64) {
    key(s, k);
    push_f64(s, v);
}

/// Shortest-roundtrip decimal; `null` for non-finite (JSON has no NaN/inf).
fn push_f64(s: &mut String, v: f64) {
    if !v.is_finite() {
        s.push_str("null");
    } else {
        let text = format!("{v}");
        s.push_str(&text);
        // `{}` omits ".0" for integral floats; keep them typed as floats so
        // downstream tooling never reparses a rate as an integer.
        if !text.contains('.') && !text.contains('e') && !text.contains("inf") {
            s.push_str(".0");
        }
    }
}

fn usize_array(s: &mut String, v: &[usize]) {
    s.push('[');
    for (i, x) in v.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&x.to_string());
    }
    s.push(']');
}

fn u64_array(s: &mut String, v: &[u64]) {
    s.push('[');
    for (i, x) in v.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&x.to_string());
    }
    s.push(']');
}

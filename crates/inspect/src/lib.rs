//! qip-inspect: decode-time stream forensics.
//!
//! Given any stream the registry can decode, [`inspect_bytes`] produces an
//! [`InspectReport`] with three sections:
//!
//! * an **exact bit-accounting ledger** — every byte of the stream attributed
//!   to a named component (integrity seal, header, entropy tables, payload,
//!   side channels, container index, …). The components always sum to the
//!   stream length *exactly*; a stream whose layout does not sum is rejected
//!   as corrupt rather than reported approximately.
//! * **QP decision maps** — per-level gate-fired / accepted / rejected
//!   counters recovered from the decode itself, plus an optional coarse
//!   spatial heatmap of accept rates.
//! * **error-budget analytics** — when the original field is available,
//!   pointwise `|err| / bound` margin histograms, per-level PSNR, and the
//!   worst-case margin ([`inspect_bytes_with_original`]).
//!
//! Inspection is strictly read-only: it never changes compressed bytes, and
//! the reconstructed field is bit-identical to a plain decompress (both are
//! pinned by this crate's test suite). The forensic decode always runs the
//! scalar reference kernels, so reports are byte-identical across runs and
//! thread counts regardless of the process-wide kernel switch.

mod json;
mod render;

use qip_codec::varint::uvarint_len;
use qip_codec::{inspect_index_block, price_symbol_range, ByteReader, IndexForensics};
use qip_container::ContainerInfo;
use qip_core::{CompressError, Compressor, StreamHeader};
use qip_interp::{EngineConfig, EngineForensics, EngineLayout, InterpEngine, LevelForensics, QuantCapture};
use qip_mgard::Mgard;
use qip_quant::{LinearQuantizer, UNPRED};
use qip_registry::AnyCompressor;
use qip_sz3::Sz3;
use qip_tensor::{Field, Scalar};

/// Largest heatmap extent per axis; real extents smaller than this map 1:1.
pub const HEATMAP_MAX_EDGE: usize = 16;

/// Number of buckets in the `|err| / bound` margin histogram (over `[0, 1]`).
pub const MARGIN_BUCKETS: usize = 10;

// ---------------------------------------------------------------------------
// Report types
// ---------------------------------------------------------------------------

/// One ledger line: `bytes` of the stream attributed to `component`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerEntry {
    /// Component name (`seal`, `header`, `index.tables`, `container.index`, …).
    pub component: String,
    /// Exact byte count attributed to the component.
    pub bytes: u64,
}

/// Per-level QP decision counters plus the level's entropy cost.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelReport {
    /// Interpolation / multigrid level (1 = finest).
    pub level: usize,
    /// Points processed on this level.
    pub points: u64,
    /// Points where the QP gate was open (transform applied).
    pub accepted: u64,
    /// Points where the gate stayed closed.
    pub rejected: u64,
    /// Points where the transform actually changed the index (`Q' ≠ Q`).
    pub fired: u64,
    /// `accepted / points` (0 when the level is empty).
    pub accept_rate: f64,
    /// `fired / points`.
    pub fire_rate: f64,
    /// Entropy bits this level's indices cost in the index block.
    pub index_bits: f64,
    /// Whether `index_bits` is exact stream bits (plain Huffman chunks) or a
    /// model-based estimate (range-coded / LZ-wrapped chunks).
    pub bits_exact: bool,
}

/// QP decision summary for one stream (or a tiled rollup).
#[derive(Debug, Clone, PartialEq)]
pub struct QpReport {
    /// Whether the stream's config enables the QP transform at all.
    pub enabled: bool,
    /// Per-level counters, coarsest first.
    pub levels: Vec<LevelReport>,
    /// Anchor-grid / coarse-node point count (not gated).
    pub anchors: u64,
    /// Unpredictable (escaped) point count.
    pub unpredictable: u64,
}

/// Coarse spatial accept-rate grid (downsampled to ≤ [`HEATMAP_MAX_EDGE`]
/// cells per axis, row-major).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Heatmap {
    /// Grid extents, one per field axis.
    pub grid: Vec<usize>,
    /// Interpolated points per cell.
    pub points: Vec<u64>,
    /// Gate-open points per cell.
    pub accepted: Vec<u64>,
    /// Transform-fired points per cell.
    pub fired: Vec<u64>,
}

/// Per-tile ledger rollup for tiled containers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileRollup {
    /// Tile count.
    pub tiles: usize,
    /// Smallest tile stream in bytes.
    pub min_tile_bytes: u64,
    /// Median tile stream in bytes.
    pub median_tile_bytes: u64,
    /// Largest tile stream in bytes.
    pub max_tile_bytes: u64,
    /// `(compressor, tiles, total bytes)` breakdown.
    pub by_compressor: Vec<(String, usize, u64)>,
}

/// Error-budget analytics against the original field.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorBudget {
    /// Absolute error bound the stream was quantized at.
    pub bound: f64,
    /// Largest pointwise absolute error.
    pub max_abs_error: f64,
    /// Largest `|err| / bound` margin.
    pub max_margin: f64,
    /// Mean `|err| / bound` margin.
    pub mean_margin: f64,
    /// Points whose error exceeds the bound (must be 0 for a correct stream).
    pub violations: u64,
    /// Histogram of margins over `[0, 1]` in [`MARGIN_BUCKETS`] buckets.
    pub margin_histogram: Vec<u64>,
    /// Whole-field PSNR in dB (NaN when undefined).
    pub psnr: f64,
    /// `(level, PSNR)` over the points decoded at each level (level 0 =
    /// anchors / coarse nodes); only for forensically decoded streams.
    pub level_psnr: Vec<(usize, f64)>,
}

/// The full forensic report for one compressed stream.
#[derive(Debug, Clone, PartialEq)]
pub struct InspectReport {
    /// Stream kind: `sz3-interp`, `sz3-lorenzo`, `qoz`, `hpez`, `mgard`,
    /// `zfp`, `sperr`, `tthresh`, or `tiled`.
    pub kind: &'static str,
    /// Compressor family name (for tiled containers, the per-tile name).
    pub compressor: String,
    /// Scalar width of the stored field (32 or 64).
    pub scalar_bits: u32,
    /// Field dims.
    pub dims: Vec<usize>,
    /// Total compressed stream length.
    pub stream_bytes: u64,
    /// Uncompressed field size in bytes.
    pub raw_bytes: u64,
    /// `raw_bytes / stream_bytes`.
    pub ratio: f64,
    /// Absolute error bound from the stream header.
    pub abs_bound: f64,
    /// Exact byte ledger; entries sum to `stream_bytes`.
    pub ledger: Vec<LedgerEntry>,
    /// QP decision counters (absent for comparators without a QP path).
    pub qp: Option<QpReport>,
    /// Coarse spatial accept map (forensically decoded flat streams only).
    pub heatmap: Option<Heatmap>,
    /// Per-tile rollup (tiled containers only).
    pub tiles: Option<TileRollup>,
    /// Error-budget analytics (only with the original field).
    pub error_budget: Option<ErrorBudget>,
}

impl InspectReport {
    /// Sum of all ledger entries; equals `stream_bytes` by construction.
    pub fn ledger_total(&self) -> u64 {
        self.ledger.iter().map(|e| e.bytes).sum()
    }

    /// Bytes attributed to `component` (0 if absent).
    pub fn component_bytes(&self, component: &str) -> u64 {
        self.ledger
            .iter()
            .filter(|e| e.component == component)
            .map(|e| e.bytes)
            .sum()
    }

    /// Deterministic JSON rendering (fixed key order, shortest-roundtrip
    /// floats, non-finite values as `null`).
    pub fn to_json(&self) -> String {
        json::report_to_json(self)
    }

    /// Human-readable table for the CLI.
    pub fn render_table(&self) -> String {
        render::render_table(self)
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Inspect a compressed stream without the original field.
pub fn inspect_bytes(bytes: &[u8]) -> Result<InspectReport, CompressError> {
    match bytes.first() {
        None => Err(CompressError::WrongFormat("empty stream")),
        Some(0xB0) => inspect_tiled(bytes),
        Some(0x90) => Err(CompressError::Unsupported(
            "block-parallel wrapper streams are not inspectable; inspect the tiled container or per-shard streams instead",
        )),
        Some(_) => match scalar_bits_of(bytes)? {
            32 => inspect_sealed::<f32>(bytes, None),
            _ => inspect_sealed::<f64>(bytes, None),
        },
    }
}

/// Inspect a compressed stream and fill in [`ErrorBudget`] analytics against
/// `original`. The original's scalar width must match the stream's.
pub fn inspect_bytes_with_original<T: Scalar>(
    bytes: &[u8],
    original: &Field<T>,
) -> Result<InspectReport, CompressError> {
    match bytes.first() {
        None => Err(CompressError::WrongFormat("empty stream")),
        Some(0xB0) => {
            let (info, _) = ContainerInfo::parse(bytes)?;
            if info.bits != T::BITS {
                return Err(CompressError::WrongFormat("original scalar width disagrees with the stream"));
            }
            let recon = qip_container::decompress_full::<T>(bytes)?;
            let mut report = inspect_tiled(bytes)?;
            report.error_budget =
                Some(error_budget(original, &recon, info.abs_bound, &[], &[]));
            Ok(report)
        }
        Some(0x90) => Err(CompressError::Unsupported(
            "block-parallel wrapper streams are not inspectable; inspect the tiled container or per-shard streams instead",
        )),
        Some(_) => {
            if scalar_bits_of(bytes)? != T::BITS {
                return Err(CompressError::WrongFormat("original scalar width disagrees with the stream"));
            }
            inspect_sealed::<T>(bytes, Some(original))
        }
    }
}

/// Registry-level sugar: inspect via an [`AnyCompressor`] handle.
pub trait InspectExt {
    /// Forensically inspect `bytes` (must be a stream this registry decodes).
    fn inspect(&self, bytes: &[u8]) -> Result<InspectReport, CompressError>;
    /// Inspect with error-budget analytics against `original`.
    fn inspect_with_original<T: Scalar>(
        &self,
        bytes: &[u8],
        original: &Field<T>,
    ) -> Result<InspectReport, CompressError>;
}

impl InspectExt for AnyCompressor {
    fn inspect(&self, bytes: &[u8]) -> Result<InspectReport, CompressError> {
        inspect_bytes(bytes)
    }

    fn inspect_with_original<T: Scalar>(
        &self,
        bytes: &[u8],
        original: &Field<T>,
    ) -> Result<InspectReport, CompressError> {
        inspect_bytes_with_original(bytes, original)
    }
}

/// Scalar width recorded at a fixed offset in every sealed stream header.
/// The SZ3 wrapper interposes a pipeline tag before its inner header, so the
/// width byte sits two bytes deeper there.
fn scalar_bits_of(bytes: &[u8]) -> Result<u32, CompressError> {
    let offset = if bytes.first() == Some(&0x20) { 3 } else { 1 };
    match bytes.get(offset) {
        Some(32) => Ok(32),
        Some(64) => Ok(64),
        _ => Err(CompressError::WrongFormat("unknown scalar width")),
    }
}

// ---------------------------------------------------------------------------
// Sealed single-compressor streams
// ---------------------------------------------------------------------------

fn inspect_sealed<T: Scalar>(
    bytes: &[u8],
    original: Option<&Field<T>>,
) -> Result<InspectReport, CompressError> {
    let magic = bytes[0];
    let mut report = match magic {
        0x20 => {
            let inner = qip_core::integrity::check(bytes)?;
            let seal = (bytes.len() - inner.len()) as u64;
            let tag = *inner.get(1).ok_or(CompressError::Corrupt("truncated SZ3 wrapper"))?;
            let body = &inner[2..];
            let mut head = vec![
                LedgerEntry { component: "seal".into(), bytes: seal },
                LedgerEntry { component: "wrapper".into(), bytes: 2 },
            ];
            match tag {
                0 => {
                    let mut r = engine_report::<T>(
                        body,
                        EngineConfig::sz3_like(0x21),
                        "sz3-interp",
                        "SZ3",
                        original,
                    )?;
                    head.append(&mut r.ledger);
                    r.ledger = head;
                    r
                }
                1 => {
                    let mut r = lorenzo_report::<T>(body, bytes, original)?;
                    head.append(&mut r.ledger);
                    r.ledger = head;
                    r
                }
                _ => return Err(CompressError::WrongFormat("bad SZ3 pipeline tag")),
            }
        }
        0x30 | 0x40 => {
            let inner = qip_core::integrity::check(bytes)?;
            let seal = (bytes.len() - inner.len()) as u64;
            let (cfg, kind, name) = if magic == 0x30 {
                (EngineConfig::qoz_like(0x30), "qoz", "QoZ")
            } else {
                (EngineConfig::hpez_like(0x40), "hpez", "HPEZ")
            };
            let mut r = engine_report::<T>(inner, cfg, kind, name, original)?;
            r.ledger.insert(0, LedgerEntry { component: "seal".into(), bytes: seal });
            r
        }
        0x50 => mgard_report::<T>(bytes, original)?,
        0x60 | 0x70 | 0x80 => comparator_report::<T>(bytes, original)?,
        _ => return Err(CompressError::WrongFormat("unknown stream magic")),
    };

    report.stream_bytes = bytes.len() as u64;
    report.raw_bytes =
        report.dims.iter().product::<usize>() as u64 * (report.scalar_bits as u64 / 8);
    report.ratio = if report.stream_bytes > 0 {
        report.raw_bytes as f64 / report.stream_bytes as f64
    } else {
        0.0
    };
    if report.ledger_total() != report.stream_bytes {
        return Err(CompressError::Corrupt("forensic ledger does not sum to the stream length"));
    }
    Ok(report)
}

/// Skeleton report with the sizing fields left for [`inspect_sealed`] to fill.
fn blank_report(kind: &'static str, compressor: &str, bits: u32, dims: Vec<usize>, abs_eb: f64) -> InspectReport {
    InspectReport {
        kind,
        compressor: compressor.to_string(),
        scalar_bits: bits,
        dims,
        stream_bytes: 0,
        raw_bytes: 0,
        ratio: 0.0,
        abs_bound: abs_eb,
        ledger: Vec::new(),
        qp: None,
        heatmap: None,
        tiles: None,
        error_budget: None,
    }
}

fn push_nonzero(ledger: &mut Vec<LedgerEntry>, component: &str, bytes: u64) {
    if bytes > 0 {
        ledger.push(LedgerEntry { component: component.into(), bytes });
    }
}

/// Append the three-way `index.framing` / `index.tables` / `index.payload`
/// split for an entropy-coded index block, falling back to a single opaque
/// `index` line if the block defies sub-parsing.
fn push_index_split(
    ledger: &mut Vec<LedgerEntry>,
    block: &[u8],
    n: usize,
) -> Option<IndexForensics> {
    if block.is_empty() {
        return None;
    }
    match inspect_index_block(block, n) {
        Ok(fx) if fx.total_bytes == block.len() as u64 => {
            push_nonzero(ledger, "index.framing", fx.framing_bytes);
            push_nonzero(ledger, "index.tables", fx.table_bytes);
            push_nonzero(ledger, "index.payload", fx.payload_bytes);
            Some(fx)
        }
        _ => {
            push_nonzero(ledger, "index", block.len() as u64);
            None
        }
    }
}

/// Per-level counters → report rows, pricing each level's slice of the
/// transformed index stream against the entropy-block forensics.
fn level_reports(
    levels: &[LevelForensics],
    qprime: &[i32],
    index_fx: Option<&IndexForensics>,
) -> Vec<LevelReport> {
    levels
        .iter()
        .map(|ls| {
            let (index_bits, bits_exact) = match index_fx {
                Some(fx) => price_symbol_range(fx, qprime, ls.qprime_start, ls.qprime_end),
                None => (0.0, false),
            };
            let pts = ls.points.max(1) as f64;
            LevelReport {
                level: ls.level,
                points: ls.points,
                accepted: ls.accepted,
                rejected: ls.points - ls.accepted,
                fired: ls.fired,
                accept_rate: ls.accepted as f64 / pts,
                fire_rate: ls.fired as f64 / pts,
                index_bits,
                bits_exact,
            }
        })
        .collect()
}

/// Downsample the per-point decision maps to a coarse accept-rate grid.
fn heatmap(dims: &[usize], capture: &QuantCapture, accepted: &[u8]) -> Option<Heatmap> {
    let n: usize = dims.iter().product();
    if n == 0 || capture.q.len() != n || accepted.len() != n {
        return None;
    }
    let grid: Vec<usize> = dims.iter().map(|&d| d.clamp(1, HEATMAP_MAX_EDGE)).collect();
    let cells: usize = grid.iter().product();
    let mut map = Heatmap {
        grid: grid.clone(),
        points: vec![0; cells],
        accepted: vec![0; cells],
        fired: vec![0; cells],
    };
    for (flat, &acc) in accepted.iter().enumerate() {
        if acc == 0 {
            continue; // anchor / coarse node: not a gated point
        }
        // Row-major coordinate decomposition, then per-axis downsample.
        let mut rem = flat;
        let mut cell = 0usize;
        for k in (0..dims.len()).rev() {
            let c = rem % dims[k];
            rem /= dims[k];
            let g = c * grid[k] / dims[k];
            // Rebuild the cell index most-significant-axis first.
            cell += g * grid[k + 1..].iter().product::<usize>();
        }
        map.points[cell] += 1;
        if acc == 2 {
            map.accepted[cell] += 1;
        }
        if capture.q[flat] != capture.q_prime[flat] && capture.q[flat] != UNPRED {
            map.fired[cell] += 1;
        }
    }
    Some(map)
}

/// Error-budget analytics. `level_of` (spatial per-point levels) and `range`
/// of the original drive the per-level PSNR; pass an empty slice to skip it.
fn error_budget<T: Scalar>(
    original: &Field<T>,
    recon: &Field<T>,
    bound: f64,
    level_of: &[u8],
    levels_present: &[usize],
) -> ErrorBudget {
    let quant = LinearQuantizer::new(bound);
    let orig = original.as_slice();
    let rec = recon.as_slice();
    let n = orig.len().min(rec.len());
    let mut hist = vec![0u64; MARGIN_BUCKETS];
    let (mut max_err, mut max_margin, mut sum_margin, mut violations) = (0.0f64, 0.0f64, 0.0f64, 0u64);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for i in 0..n {
        let o = orig[i].to_f64();
        lo = lo.min(o);
        hi = hi.max(o);
        let err = (o - rec[i].to_f64()).abs();
        let m = quant.margin_fraction(err);
        max_err = max_err.max(err);
        max_margin = max_margin.max(m);
        sum_margin += m;
        if m > 1.0 {
            violations += 1;
        } else {
            hist[((m * MARGIN_BUCKETS as f64) as usize).min(MARGIN_BUCKETS - 1)] += 1;
        }
    }
    let range = hi - lo;
    let psnr_of = |mse: f64| {
        if mse > 0.0 && range > 0.0 {
            20.0 * range.log10() - 10.0 * mse.log10()
        } else {
            f64::NAN
        }
    };
    let mut level_psnr = Vec::new();
    if level_of.len() == n {
        for &lvl in levels_present {
            let (mut se, mut count) = (0.0f64, 0u64);
            for i in 0..n {
                if level_of[i] as usize == lvl {
                    let d = orig[i].to_f64() - rec[i].to_f64();
                    se += d * d;
                    count += 1;
                }
            }
            if count > 0 {
                level_psnr.push((lvl, psnr_of(se / count as f64)));
            }
        }
    }
    ErrorBudget {
        bound,
        max_abs_error: max_err,
        max_margin,
        mean_margin: if n > 0 { sum_margin / n as f64 } else { 0.0 },
        violations,
        margin_histogram: hist,
        psnr: qip_metrics::psnr(original, recon),
        level_psnr,
    }
}

/// Distinct levels in a capture, anchors (0) first.
fn levels_present(level_of: &[u8]) -> Vec<usize> {
    let mut seen = [false; 256];
    for &l in level_of {
        seen[l as usize] = true;
    }
    (0..256).filter(|&l| seen[l]).collect()
}

fn engine_layout_ledger(ledger: &mut Vec<LedgerEntry>, layout: &EngineLayout) {
    push_nonzero(ledger, "header", layout.header_bytes);
    push_nonzero(ledger, "config", layout.config_bytes);
    push_nonzero(ledger, "level_tags", layout.level_tag_bytes);
    push_nonzero(ledger, "framing", layout.framing_bytes);
    push_nonzero(ledger, "anchors", layout.anchor_bytes);
    push_nonzero(ledger, "unpred", layout.unpred_bytes);
}

/// Shared report builder for unsealed interpolation-engine streams
/// (SZ3-interp inner, QoZ, HPEZ).
fn engine_report<T: Scalar>(
    inner: &[u8],
    cfg: EngineConfig,
    kind: &'static str,
    name: &str,
    original: Option<&Field<T>>,
) -> Result<InspectReport, CompressError> {
    let fx: EngineForensics<T> = InterpEngine::new(cfg).decompress_forensic(inner)?;
    let dims = fx.field.shape().dims().to_vec();
    let mut report = blank_report(kind, name, T::BITS, dims.clone(), fx.abs_eb);
    engine_layout_ledger(&mut report.ledger, &fx.layout);
    let n: usize = dims.iter().product();
    let index_fx = push_index_split(&mut report.ledger, &fx.index_block, n);
    report.qp = Some(QpReport {
        enabled: fx.qp_enabled,
        levels: level_reports(&fx.levels, &fx.qprime, index_fx.as_ref()),
        anchors: fx.anchors,
        unpredictable: fx.unpredictable,
    });
    report.heatmap = heatmap(&dims, &fx.capture, &fx.accepted);
    if let Some(orig) = original {
        report.error_budget = Some(error_budget(
            orig,
            &fx.field,
            fx.abs_eb,
            &fx.capture.level,
            &levels_present(&fx.capture.level),
        ));
    }
    Ok(report)
}

fn mgard_report<T: Scalar>(
    bytes: &[u8],
    original: Option<&Field<T>>,
) -> Result<InspectReport, CompressError> {
    let fx = Mgard::new().decompress_forensic::<T>(bytes)?;
    let dims = fx.field.shape().dims().to_vec();
    let mut report = blank_report("mgard", "MGARD", T::BITS, dims.clone(), fx.abs_eb);
    report.ledger.push(LedgerEntry { component: "seal".into(), bytes: fx.seal_bytes });
    engine_layout_ledger(&mut report.ledger, &fx.layout);
    let n: usize = dims.iter().product();
    let index_fx = push_index_split(&mut report.ledger, &fx.index_block, n);
    report.qp = Some(QpReport {
        enabled: fx.qp_enabled,
        levels: level_reports(&fx.levels, &fx.qprime, index_fx.as_ref()),
        anchors: fx.anchors,
        unpredictable: fx.unpredictable,
    });
    report.heatmap = heatmap(&dims, &fx.capture, &fx.accepted);
    if let Some(orig) = original {
        report.error_budget = Some(error_budget(
            orig,
            &fx.field,
            fx.abs_eb,
            &fx.capture.level,
            &levels_present(&fx.capture.level),
        ));
    }
    Ok(report)
}

/// Lorenzo inner stream (SZ3's alternate pipeline): layout walk plus an
/// ordinary decode for the error budget. `sealed` is the full outer stream
/// the [`Sz3`] decoder accepts.
fn lorenzo_report<T: Scalar>(
    inner: &[u8],
    sealed: &[u8],
    original: Option<&Field<T>>,
) -> Result<InspectReport, CompressError> {
    let mut r = ByteReader::new(inner);
    let header = StreamHeader::read(&mut r, 0x22, T::BITS as u8)?;
    let dims = header.shape.dims().to_vec();
    let n: usize = dims.iter().product();
    let mut report =
        blank_report("sz3-lorenzo", "SZ3", T::BITS, dims.clone(), header.abs_eb);
    let header_bytes =
        3 + dims.iter().map(|&d| uvarint_len(d as u64)).sum::<u64>() + 8;
    push_nonzero(&mut report.ledger, "header", header_bytes);
    let mut framing = 0u64;
    if n > 0 {
        let blockwise = r.get_u8()? != 0;
        push_nonzero(&mut report.ledger, "config", 1);
        if blockwise {
            let bits = r.get_block()?;
            let coeffs = r.get_block()?;
            framing += uvarint_len(bits.len() as u64) + uvarint_len(coeffs.len() as u64);
            push_nonzero(&mut report.ledger, "choice_bits", bits.len() as u64);
            push_nonzero(&mut report.ledger, "coeffs", coeffs.len() as u64);
        }
        let unpred = r.get_block()?;
        let index = r.get_block()?;
        framing += uvarint_len(unpred.len() as u64) + uvarint_len(index.len() as u64);
        push_nonzero(&mut report.ledger, "framing", framing);
        push_nonzero(&mut report.ledger, "unpred", unpred.len() as u64);
        push_index_split(&mut report.ledger, index, n);
    }
    if r.remaining() != 0 {
        return Err(CompressError::Corrupt("trailing bytes after the Lorenzo stream"));
    }
    if let Some(orig) = original {
        let recon: Field<T> = Sz3::new().decompress(sealed)?;
        report.error_budget = Some(error_budget(orig, &recon, header.abs_eb, &[], &[]));
    }
    Ok(report)
}

/// ZFP / SPERR / TTHRESH: pure layout walks (these comparators have no QP
/// path), with an ordinary decode for the error budget.
fn comparator_report<T: Scalar>(
    bytes: &[u8],
    original: Option<&Field<T>>,
) -> Result<InspectReport, CompressError> {
    let magic = bytes[0];
    let inner = qip_core::integrity::check(bytes)?;
    let seal = (bytes.len() - inner.len()) as u64;
    let mut r = ByteReader::new(inner);
    let header = StreamHeader::read(&mut r, magic, T::BITS as u8)?;
    let dims = header.shape.dims().to_vec();
    let n: usize = dims.iter().product();
    let (kind, name): (&'static str, &str) = match magic {
        0x60 => ("zfp", "ZFP"),
        0x70 => ("sperr", "SPERR"),
        _ => ("tthresh", "TTHRESH"),
    };
    let mut report = blank_report(kind, name, T::BITS, dims.clone(), header.abs_eb);
    report.ledger.push(LedgerEntry { component: "seal".into(), bytes: seal });
    let header_bytes =
        3 + dims.iter().map(|&d| uvarint_len(d as u64)).sum::<u64>() + 8;
    push_nonzero(&mut report.ledger, "header", header_bytes);
    if n > 0 {
        let mut framing = 0u64;
        match magic {
            0x60 => {
                let payload = r.get_block()?;
                framing += uvarint_len(payload.len() as u64);
                push_nonzero(&mut report.ledger, "framing", framing);
                push_nonzero(&mut report.ledger, "payload", payload.len() as u64);
            }
            _ => {
                let mut factors = 0u64;
                if magic == 0x80 {
                    for _ in 0..dims.len() {
                        let f = r.get_block()?;
                        framing += uvarint_len(f.len() as u64);
                        factors += f.len() as u64;
                    }
                }
                let index = r.get_block()?;
                let raw = r.get_block()?;
                let n_corr = r.get_uvarint()?;
                let corr = r.get_block()?;
                framing += uvarint_len(index.len() as u64)
                    + uvarint_len(raw.len() as u64)
                    + uvarint_len(n_corr)
                    + uvarint_len(corr.len() as u64);
                push_nonzero(&mut report.ledger, "framing", framing);
                push_nonzero(&mut report.ledger, "factors", factors);
                push_index_split(&mut report.ledger, index, n);
                push_nonzero(&mut report.ledger, "raw", raw.len() as u64);
                push_nonzero(&mut report.ledger, "corrections", corr.len() as u64);
            }
        }
    }
    if r.remaining() != 0 {
        return Err(CompressError::Corrupt("trailing bytes after the stream payload"));
    }
    if let Some(orig) = original {
        let recon: Field<T> = match magic {
            0x60 => qip_zfp_decode::<T>(bytes)?,
            0x70 => qip_sperr_decode::<T>(bytes)?,
            _ => qip_tthresh_decode::<T>(bytes)?,
        };
        report.error_budget = Some(error_budget(orig, &recon, header.abs_eb, &[], &[]));
    }
    Ok(report)
}

// Comparator decodes go through the registry so this crate needs no direct
// dependency on the three comparator crates.
fn qip_zfp_decode<T: Scalar>(bytes: &[u8]) -> Result<Field<T>, CompressError> {
    registry_decode::<T>("zfp", bytes)
}
fn qip_sperr_decode<T: Scalar>(bytes: &[u8]) -> Result<Field<T>, CompressError> {
    registry_decode::<T>("sperr", bytes)
}
fn qip_tthresh_decode<T: Scalar>(bytes: &[u8]) -> Result<Field<T>, CompressError> {
    registry_decode::<T>("tthresh", bytes)
}
fn registry_decode<T: Scalar>(base: &str, bytes: &[u8]) -> Result<Field<T>, CompressError> {
    let comp = AnyCompressor::by_base_name(base, qip_core::QpConfig::off())
        .ok_or(CompressError::WrongFormat("unknown comparator"))?;
    comp.as_dyn::<T>().decompress(bytes)
}

// ---------------------------------------------------------------------------
// Tiled containers
// ---------------------------------------------------------------------------

fn inspect_tiled(bytes: &[u8]) -> Result<InspectReport, CompressError> {
    let (info, payload) = ContainerInfo::parse(bytes)?;
    // Header: magic + version + u32 index length. Index: the sealed blob.
    let index_bytes = bytes.len() - payload.len() - 6;
    let mut report = blank_report("tiled", &info.compressor, info.bits, info.dims.clone(), info.abs_bound);
    report.stream_bytes = bytes.len() as u64;
    report.raw_bytes = info.dims.iter().product::<usize>() as u64 * (info.bits as u64 / 8);
    report.ratio = if bytes.is_empty() { 0.0 } else { report.raw_bytes as f64 / bytes.len() as f64 };
    report.ledger.push(LedgerEntry { component: "container.header".into(), bytes: 6 });
    report.ledger.push(LedgerEntry { component: "container.index".into(), bytes: index_bytes as u64 });

    // Per-tile forensics, rolled up: ledger components aggregate by name (in
    // first-seen order), QP level counters merge by level.
    let mut agg: Vec<LedgerEntry> = Vec::new();
    let mut tile_sizes: Vec<u64> = Vec::with_capacity(info.tiles.len());
    let mut qp_rollup: Option<QpReport> = None;
    for i in 0..info.tiles.len() {
        let tile = info
            .tile_payload(payload, i)
            .ok_or(CompressError::Corrupt("tile payload out of range"))?;
        tile_sizes.push(tile.len() as u64);
        let sub = match info.bits {
            32 => inspect_sealed::<f32>(tile, None)?,
            _ => inspect_sealed::<f64>(tile, None)?,
        };
        for e in sub.ledger {
            match agg.iter_mut().find(|a| a.component == e.component) {
                Some(a) => a.bytes += e.bytes,
                None => agg.push(e),
            }
        }
        if let Some(qp) = sub.qp {
            qp_rollup = Some(merge_qp(qp_rollup.take(), qp));
        }
    }
    report.ledger.append(&mut agg);
    report.qp = qp_rollup;

    let mut sorted = tile_sizes.clone();
    sorted.sort_unstable();
    report.tiles = Some(TileRollup {
        tiles: info.tiles.len(),
        min_tile_bytes: sorted.first().copied().unwrap_or(0),
        median_tile_bytes: sorted.get(sorted.len() / 2).copied().unwrap_or(0),
        max_tile_bytes: sorted.last().copied().unwrap_or(0),
        by_compressor: vec![(
            info.compressor.clone(),
            info.tiles.len(),
            tile_sizes.iter().sum(),
        )],
    });
    if report.ledger_total() != report.stream_bytes {
        return Err(CompressError::Corrupt("forensic ledger does not sum to the stream length"));
    }
    Ok(report)
}

/// Merge one tile's QP report into the rollup: counters add per level,
/// per-level bits add, exactness ANDs, rates are recomputed from the sums.
fn merge_qp(acc: Option<QpReport>, next: QpReport) -> QpReport {
    let mut acc = match acc {
        None => return next,
        Some(a) => a,
    };
    acc.enabled |= next.enabled;
    acc.anchors += next.anchors;
    acc.unpredictable += next.unpredictable;
    for lr in next.levels {
        match acc.levels.iter_mut().find(|a| a.level == lr.level) {
            Some(a) => {
                a.points += lr.points;
                a.accepted += lr.accepted;
                a.rejected += lr.rejected;
                a.fired += lr.fired;
                a.index_bits += lr.index_bits;
                a.bits_exact &= lr.bits_exact;
                let pts = a.points.max(1) as f64;
                a.accept_rate = a.accepted as f64 / pts;
                a.fire_rate = a.fired as f64 / pts;
            }
            None => acc.levels.push(lr),
        }
    }
    acc.levels.sort_by_key(|l| std::cmp::Reverse(l.level));
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use qip_core::ErrorBound;
    use qip_tensor::Shape;

    fn banded(dims: &[usize]) -> Field<f32> {
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n)
            .map(|i| ((i % 37) as f32 * 0.11).sin() + (i / 41) as f32 * 0.01)
            .collect();
        Field::from_vec(Shape::new(dims), data).unwrap()
    }

    #[test]
    fn ledger_sums_for_every_registry_compressor() {
        let field = banded(&[20, 15]);
        for comp in AnyCompressor::registry() {
            let bytes = comp.as_dyn::<f32>().compress(&field, ErrorBound::Abs(1e-3)).unwrap();
            let report = inspect_bytes(&bytes).unwrap();
            let name = comp.as_dyn::<f32>().name();
            assert_eq!(report.ledger_total(), bytes.len() as u64, "{name}");
            assert_eq!(report.scalar_bits, 32);
            assert_eq!(report.dims, vec![20, 15]);
        }
    }

    #[test]
    fn error_budget_respects_bound() {
        let field = banded(&[18, 14]);
        let comp = AnyCompressor::by_name("SZ3+QP").unwrap();
        let bytes = comp.as_dyn::<f32>().compress(&field, ErrorBound::Abs(1e-3)).unwrap();
        let report = comp.inspect_with_original(&bytes, &field).unwrap();
        let eb = report.error_budget.as_ref().unwrap();
        assert_eq!(eb.violations, 0);
        assert!(eb.max_margin <= 1.0 + 1e-9, "max margin {}", eb.max_margin);
        assert!(eb.margin_histogram.iter().sum::<u64>() == field.len() as u64);
        assert!(!eb.level_psnr.is_empty());
    }

    #[test]
    fn qp_counters_nonzero_when_enabled() {
        let field = banded(&[17, 13]);
        let comp = AnyCompressor::by_name("QoZ+QP").unwrap();
        let bytes = comp.as_dyn::<f32>().compress(&field, ErrorBound::Abs(1e-3)).unwrap();
        let report = inspect_bytes(&bytes).unwrap();
        let qp = report.qp.unwrap();
        assert!(qp.enabled);
        let total: u64 = qp.levels.iter().map(|l| l.points).sum();
        assert_eq!(total + qp.anchors, field.len() as u64);
        assert!(report.heatmap.is_some());
    }

    #[test]
    fn block_parallel_streams_rejected_clearly() {
        let err = inspect_bytes(&[0x90, 1, 2, 3]).unwrap_err();
        assert!(matches!(err, CompressError::Unsupported(_)));
    }

    #[test]
    fn json_is_deterministic() {
        let field = banded(&[16, 11]);
        let comp = AnyCompressor::by_name("HPEZ+QP").unwrap();
        let bytes = comp.as_dyn::<f32>().compress(&field, ErrorBound::Abs(1e-3)).unwrap();
        let a = inspect_bytes(&bytes).unwrap().to_json();
        let b = inspect_bytes(&bytes).unwrap().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with('{') && a.ends_with('}'));
    }
}

//! Multi-level separable CDF 9/7 wavelet transform (lifting implementation).
//!
//! The biorthogonal 9/7 filter pair implemented as four lifting steps plus a
//! scaling step, with whole-sample symmetric boundary extension; odd lengths
//! are supported (the approximation band gets the extra sample). Each level
//! transforms every axis whose current extent is ≥ [`MIN_LEN`], then recurses
//! on the low-pass corner block.

/// 9/7 lifting coefficients (Daubechies–Sweldens factorization).
const ALPHA: f64 = -1.586_134_342_059_924;
const BETA: f64 = -0.052_980_118_572_961;
const GAMMA: f64 = 0.882_911_075_530_934;
const DELTA: f64 = 0.443_506_852_043_971;
const KAPPA: f64 = 1.230_174_104_914_001;

/// Minimum line length still worth transforming.
pub const MIN_LEN: usize = 8;

/// Number of transform levels for a field shape (paper-style dyadic depth).
pub fn dwt2d_3d_levels(dims: &[usize]) -> usize {
    let min_dim = dims.iter().copied().min().unwrap_or(0);
    let mut levels = 0usize;
    let mut len = min_dim;
    while len >= MIN_LEN * 2 {
        levels += 1;
        len = len.div_ceil(2);
    }
    levels.min(5)
}

/// Mirror index for whole-sample symmetric extension.
#[inline]
fn mirror(i: isize, n: usize) -> usize {
    let n = n as isize;
    let mut i = i;
    loop {
        if i < 0 {
            i = -i;
        } else if i >= n {
            i = 2 * (n - 1) - i;
        } else {
            return i as usize;
        }
    }
}

/// One forward lifting pass over `line` (length ≥ 2), leaving interleaved
/// approx (even) / detail (odd) coefficients in place.
#[allow(clippy::needless_range_loop)]
fn lift_forward(line: &mut [f64]) {
    let n = line.len();
    debug_assert!(n >= 2);
    let at = |line: &[f64], i: isize| line[mirror(i, n)];
    // Predict 1: odd += α (left + right)
    for i in (1..n).step_by(2) {
        line[i] += ALPHA * (at(line, i as isize - 1) + at(line, i as isize + 1));
    }
    // Update 1: even += β (left + right)
    for i in (0..n).step_by(2) {
        line[i] += BETA * (at(line, i as isize - 1) + at(line, i as isize + 1));
    }
    // Predict 2.
    for i in (1..n).step_by(2) {
        line[i] += GAMMA * (at(line, i as isize - 1) + at(line, i as isize + 1));
    }
    // Update 2.
    for i in (0..n).step_by(2) {
        line[i] += DELTA * (at(line, i as isize - 1) + at(line, i as isize + 1));
    }
    // Scale.
    for i in 0..n {
        if i % 2 == 0 {
            line[i] *= KAPPA;
        } else {
            line[i] /= KAPPA;
        }
    }
}

/// Exact inverse of [`lift_forward`].
#[allow(clippy::needless_range_loop)]
fn lift_inverse(line: &mut [f64]) {
    let n = line.len();
    debug_assert!(n >= 2);
    let at = |line: &[f64], i: isize| line[mirror(i, n)];
    for i in 0..n {
        if i % 2 == 0 {
            line[i] /= KAPPA;
        } else {
            line[i] *= KAPPA;
        }
    }
    for i in (0..n).step_by(2) {
        line[i] -= DELTA * (at(line, i as isize - 1) + at(line, i as isize + 1));
    }
    for i in (1..n).step_by(2) {
        line[i] -= GAMMA * (at(line, i as isize - 1) + at(line, i as isize + 1));
    }
    for i in (0..n).step_by(2) {
        line[i] -= BETA * (at(line, i as isize - 1) + at(line, i as isize + 1));
    }
    for i in (1..n).step_by(2) {
        line[i] -= ALPHA * (at(line, i as isize - 1) + at(line, i as isize + 1));
    }
}

/// Deinterleave evens to the front, odds to the back.
fn deinterleave(line: &mut [f64], scratch: &mut Vec<f64>) {
    let n = line.len();
    scratch.clear();
    scratch.extend((0..n).step_by(2).map(|i| line[i]));
    scratch.extend((1..n).step_by(2).map(|i| line[i]));
    line.copy_from_slice(scratch);
}

/// Inverse of [`deinterleave`].
fn interleave(line: &mut [f64], scratch: &mut Vec<f64>) {
    let n = line.len();
    let half = n.div_ceil(2);
    scratch.clear();
    scratch.resize(n, 0.0);
    for (k, i) in (0..n).step_by(2).enumerate() {
        scratch[i] = line[k];
    }
    for (k, i) in (1..n).step_by(2).enumerate() {
        scratch[i] = line[half + k];
    }
    line.copy_from_slice(scratch);
}

/// Apply `f` to every line along `axis` within the leading `extent` region of
/// a row-major array with full dims `dims`.
fn for_each_line(
    data: &mut [f64],
    dims: &[usize],
    extent: &[usize],
    axis: usize,
    mut f: impl FnMut(&mut Vec<f64>),
) {
    let ndim = dims.len();
    let mut strides = vec![1usize; ndim];
    for i in (0..ndim.saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * dims[i + 1];
    }
    let len = extent[axis];
    let mut line = Vec::with_capacity(len);
    // Iterate over all coordinates of the other axes within `extent`.
    let others: Vec<usize> = (0..ndim).filter(|&a| a != axis).collect();
    let counts: Vec<usize> = others.iter().map(|&a| extent[a]).collect();
    let total: usize = counts.iter().product::<usize>().max(if ndim == 1 { 1 } else { 0 });
    let mut idx = vec![0usize; others.len()];
    for _ in 0..total {
        let base: usize = others.iter().zip(&idx).map(|(&a, &i)| i * strides[a]).sum();
        line.clear();
        for k in 0..len {
            line.push(data[base + k * strides[axis]]);
        }
        f(&mut line);
        for k in 0..len {
            data[base + k * strides[axis]] = line[k];
        }
        // odometer
        for j in (0..others.len()).rev() {
            idx[j] += 1;
            if idx[j] < counts[j] {
                break;
            }
            idx[j] = 0;
        }
    }
}

/// Forward multi-level transform in place.
pub fn forward_multilevel(data: &mut [f64], dims: &[usize], levels: usize) {
    let mut extent = dims.to_vec();
    let mut scratch = Vec::new();
    for _ in 0..levels {
        for axis in 0..dims.len() {
            if extent[axis] >= 2 {
                for_each_line(data, dims, &extent, axis, |line| {
                    lift_forward(line);
                    deinterleave(line, &mut scratch);
                });
            }
        }
        for e in &mut extent {
            *e = e.div_ceil(2);
        }
    }
}

/// Inverse multi-level transform in place.
pub fn inverse_multilevel(data: &mut [f64], dims: &[usize], levels: usize) {
    // Reconstruct the extent schedule, then undo levels in reverse.
    let mut schedule = Vec::with_capacity(levels);
    let mut extent = dims.to_vec();
    for _ in 0..levels {
        schedule.push(extent.clone());
        for e in &mut extent {
            *e = e.div_ceil(2);
        }
    }
    let mut scratch = Vec::new();
    for extent in schedule.into_iter().rev() {
        for axis in (0..dims.len()).rev() {
            if extent[axis] >= 2 {
                for_each_line(data, dims, &extent, axis, |line| {
                    interleave(line, &mut scratch);
                    lift_inverse(line);
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_examples() {
        assert_eq!(mirror(-1, 5), 1);
        assert_eq!(mirror(-2, 5), 2);
        assert_eq!(mirror(5, 5), 3);
        assert_eq!(mirror(6, 5), 2);
        assert_eq!(mirror(3, 5), 3);
    }

    #[test]
    fn lift_perfect_reconstruction_1d() {
        for n in [2usize, 3, 5, 8, 17, 64, 101] {
            let orig: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 23) as f64 - 11.0).collect();
            let mut line = orig.clone();
            lift_forward(&mut line);
            lift_inverse(&mut line);
            for (a, b) in line.iter().zip(&orig) {
                assert!((a - b).abs() < 1e-10, "n={n}");
            }
        }
    }

    #[test]
    fn deinterleave_roundtrip() {
        for n in [2usize, 5, 8, 9] {
            let orig: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let mut line = orig.clone();
            let mut scratch = Vec::new();
            deinterleave(&mut line, &mut scratch);
            // Evens first.
            assert_eq!(line[0], 0.0);
            if n > 2 {
                assert_eq!(line[1], 2.0);
            }
            interleave(&mut line, &mut scratch);
            assert_eq!(line, orig);
        }
    }

    #[test]
    fn multilevel_perfect_reconstruction_3d() {
        let dims = [24usize, 17, 33];
        let n: usize = dims.iter().product();
        let orig: Vec<f64> =
            (0..n).map(|i| ((i * 2_654_435_761) % 1000) as f64 / 500.0 - 1.0).collect();
        let levels = dwt2d_3d_levels(&dims);
        let mut data = orig.clone();
        forward_multilevel(&mut data, &dims, levels);
        inverse_multilevel(&mut data, &dims, levels);
        for (a, b) in data.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn multilevel_perfect_reconstruction_1d_2d() {
        for dims in [vec![50usize], vec![19, 40]] {
            let n: usize = dims.iter().product();
            let orig: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            let levels = dwt2d_3d_levels(&dims);
            let mut data = orig.clone();
            forward_multilevel(&mut data, &dims, levels);
            inverse_multilevel(&mut data, &dims, levels);
            for (a, b) in data.iter().zip(&orig) {
                assert!((a - b).abs() < 1e-9, "dims {dims:?}");
            }
        }
    }

    #[test]
    fn energy_compaction_on_smooth_signal() {
        // On a smooth signal, most post-transform energy concentrates in the
        // low-pass corner (the first extent/2^levels block per axis).
        let dims = [64usize];
        let orig: Vec<f64> = (0..64).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut data = orig.clone();
        forward_multilevel(&mut data, &dims, 2);
        let low: f64 = data[..16].iter().map(|v| v * v).sum();
        let high: f64 = data[16..].iter().map(|v| v * v).sum();
        assert!(low > 20.0 * high, "low {low} high {high}");
    }

    #[test]
    fn levels_heuristic() {
        assert!(dwt2d_3d_levels(&[256, 256, 256]) > 2);
        assert_eq!(dwt2d_3d_levels(&[8, 256, 256]), 0);
        assert_eq!(dwt2d_3d_levels(&[4]), 0);
    }
}

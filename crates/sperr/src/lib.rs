//! SPERR: wavelet-based error-bounded compressor.
//!
//! Reimplementation of the SPERR model (paper ref \[12\]): a multi-level
//! separable **CDF 9/7 lifting wavelet** decorrelates the field, the
//! coefficients are entropy-coded, and an **outlier correction** pass stores
//! explicit residual corrections for every point whose reconstruction error
//! would exceed the requested bound — the mechanism that gives SPERR its
//! strict pointwise guarantee.
//!
//! Substitution note (DESIGN.md §5): the original encodes coefficients with
//! SPECK set partitioning; we use uniform deadzone quantization + the
//! workspace Huffman→LZ stack, which preserves SPERR's evaluation profile in
//! Table IV — top-tier ratios, wavelet-dominated (low) throughput — without
//! reproducing SPECK bit-for-bit.

#![warn(missing_docs)]

mod wavelet;

pub use wavelet::{dwt2d_3d_levels, inverse_multilevel, forward_multilevel};

use qip_codec::{encode_indices, ByteReader, ByteWriter};
use qip_core::{CompressError, Compressor, ErrorBound, StreamHeader};
use qip_tensor::{Field, Scalar};

/// Stream magic for SPERR.
const MAGIC_SPERR: u8 = 0x70;
/// Coefficient quantization step as a fraction of the error bound: small
/// enough that outliers are rare, large enough to keep the rate low.
const STEP_FRACTION: f64 = 0.75;
/// Coefficient indices beyond this magnitude go to the raw side channel.
const Q_CLAMP: i64 = 1 << 30;
/// Sentinel index marking a raw-coefficient escape.
const ESCAPE: i32 = i32::MIN;

/// The SPERR compressor.
#[derive(Debug, Clone, Default)]
pub struct Sperr;

impl Sperr {
    /// A SPERR instance.
    pub fn new() -> Self {
        Sperr
    }
}

impl<T: Scalar> Compressor<T> for Sperr {
    fn name(&self) -> String {
        "SPERR".into()
    }

    fn compress(&self, field: &Field<T>, bound: ErrorBound) -> Result<Vec<u8>, CompressError> {
        let dims = field.shape().dims().to_vec();
        if dims.len() > 3 {
            return Err(CompressError::Unsupported("SPERR supports 1-3 dimensions"));
        }
        let abs_eb = bound.resolve(field).abs;
        let mut w = ByteWriter::with_capacity(field.len() / 4 + 128);
        StreamHeader {
            magic: MAGIC_SPERR,
            scalar_bits: T::BITS as u8,
            shape: field.shape().clone(),
            abs_eb,
        }
        .write(&mut w);
        if field.is_empty() {
            return Ok(qip_core::integrity::seal(w.finish()));
        }

        // Forward multi-level 9/7 transform.
        let mut coeffs: Vec<f64> = field.as_slice().iter().map(|v| v.to_f64()).collect();
        let levels = dwt2d_3d_levels(&dims);
        forward_multilevel(&mut coeffs, &dims, levels);

        // Uniform deadzone quantization.
        let step = STEP_FRACTION * abs_eb;
        let mut q = Vec::with_capacity(coeffs.len());
        let mut raw: Vec<u8> = Vec::new();
        for &c in &coeffs {
            let qi = (c / step).round();
            if !qi.is_finite() || qi.abs() as i64 >= Q_CLAMP {
                q.push(ESCAPE);
                raw.extend_from_slice(&c.to_le_bytes());
            } else {
                q.push(qi as i32);
            }
        }

        // Reconstruct exactly as the decompressor will, to find outliers.
        let mut recon: Vec<f64> = {
            let mut raw_cursor = 0usize;
            q.iter()
                .map(|&qi| {
                    if qi == ESCAPE {
                        let c = f64::from_le_bytes(
                            raw[raw_cursor..raw_cursor + 8].try_into().unwrap(),
                        );
                        raw_cursor += 8;
                        c
                    } else {
                        qi as f64 * step
                    }
                })
                .collect()
        };
        inverse_multilevel(&mut recon, &dims, levels);

        // Outlier correction records: (delta position, residual index) so the
        // final pointwise error is ≤ eb/2 at corrected points, ≤ eb elsewhere.
        let mut corrections = ByteWriter::new();
        let mut n_corr = 0u64;
        let mut last = 0usize;
        for (i, (&orig, &rec)) in field.as_slice().iter().zip(&recon).enumerate() {
            let of = orig.to_f64();
            // The bound must hold on the value *as stored* (after rounding to
            // T), so every check below goes through T::from_f64.
            let stored_err = |v: f64| (T::from_f64(v).to_f64() - of).abs();
            if stored_err(rec) <= abs_eb && of.is_finite() {
                continue;
            }
            let res = of - rec;
            let qr = (res / abs_eb).round();
            corrections.put_uvarint((i - last) as u64);
            last = i;
            let quantized_ok = qr.is_finite()
                && (qr.abs() as i64) < Q_CLAMP
                && of.is_finite()
                && stored_err(rec + qr * abs_eb) <= abs_eb;
            if quantized_ok {
                corrections.put_ivarint(qr as i64);
            } else {
                // Escape: store the exact original value.
                corrections.put_ivarint(i64::MIN + 1);
                corrections.put_f64(of);
            }
            n_corr += 1;
        }

        w.put_block(&encode_indices(&q));
        w.put_block(&raw);
        w.put_uvarint(n_corr);
        w.put_block(&corrections.finish());
        Ok(qip_core::integrity::seal(w.finish()))
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Field<T>, CompressError> {
        let bytes = qip_core::integrity::check(bytes)?;
        let mut r = ByteReader::new(bytes);
        let header = StreamHeader::read(&mut r, MAGIC_SPERR, T::BITS as u8)?;
        let dims = header.shape.dims().to_vec();
        let n: usize = dims.iter().product();
        if n == 0 {
            return Ok(Field::zeros(header.shape));
        }
        let q = qip_codec::decode_indices_capped(r.get_block()?, n)?;
        if q.len() != n {
            return Err(CompressError::WrongFormat("coefficient count mismatch"));
        }
        let raw = r.get_block()?;
        if raw.len() % 8 != 0 {
            return Err(CompressError::WrongFormat("raw coefficient block misaligned"));
        }
        let n_corr = r.get_uvarint()?;
        let corr_block = r.get_block()?;

        let step = STEP_FRACTION * header.abs_eb;
        let mut raw_cursor = 0usize;
        let mut coeffs = qip_core::try_with_capacity::<f64>(n)?;
        for &qi in &q {
            if qi == ESCAPE {
                let chunk = raw
                    .get(raw_cursor..raw_cursor + 8)
                    .ok_or(CompressError::WrongFormat("raw coefficient channel exhausted"))?;
                coeffs.push(f64::from_le_bytes(chunk.try_into().unwrap()));
                raw_cursor += 8;
            } else {
                coeffs.push(qi as f64 * step);
            }
        }
        let levels = dwt2d_3d_levels(&dims);
        inverse_multilevel(&mut coeffs, &dims, levels);

        // Apply corrections.
        let mut cr = ByteReader::new(corr_block);
        let mut pos = 0usize;
        for k in 0..n_corr {
            let delta = cr.get_uvarint()? as usize;
            pos = if k == 0 { delta } else { pos + delta };
            if pos >= n {
                return Err(CompressError::WrongFormat("correction position out of range"));
            }
            let qr = cr.get_ivarint()?;
            if qr == i64::MIN + 1 {
                coeffs[pos] = cr.get_f64()?;
            } else {
                coeffs[pos] += qr as f64 * header.abs_eb;
            }
        }

        let data: Vec<T> = coeffs.into_iter().map(T::from_f64).collect();
        Ok(Field::from_vec(header.shape, data)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qip_tensor::Shape;
    use qip_metrics::max_abs_error;

    fn smooth(dims: &[usize]) -> Field<f32> {
        Field::from_fn(Shape::new(dims), |c| {
            let x = c[0] as f32;
            let y = c.get(1).copied().unwrap_or(0) as f32;
            let z = c.get(2).copied().unwrap_or(0) as f32;
            (0.06 * x).sin() + 0.6 * (0.09 * y).cos() + 0.03 * z
        })
    }

    #[test]
    fn roundtrip_bound_3d() {
        let f = smooth(&[22, 18, 13]);
        let sperr = Sperr::new();
        for eb in [1e-2, 1e-3, 1e-4] {
            let bytes = sperr.compress(&f, ErrorBound::Abs(eb)).unwrap();
            let out = sperr.decompress(&bytes).unwrap();
            let err = max_abs_error(&f, &out);
            assert!(err <= eb + 1e-12, "eb={eb}: err {err}");
        }
    }

    #[test]
    fn roundtrip_1d_2d() {
        for dims in [vec![41usize], vec![26, 33]] {
            let f = smooth(&dims);
            let sperr = Sperr::new();
            let bytes = sperr.compress(&f, ErrorBound::Abs(1e-3)).unwrap();
            let out = sperr.decompress(&bytes).unwrap();
            assert!(max_abs_error(&f, &out) <= 1e-3 + 1e-12, "dims {dims:?}");
        }
    }

    #[test]
    fn rough_data_still_bounded_via_corrections() {
        let mut state = 77u64;
        let f = Field::<f32>::from_fn(Shape::d3(11, 11, 11), |_| {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            ((state >> 40) as f32 / 16777216.0) * 100.0
        });
        let sperr = Sperr::new();
        let bytes = sperr.compress(&f, ErrorBound::Abs(1e-4)).unwrap();
        let out = sperr.decompress(&bytes).unwrap();
        assert!(max_abs_error(&f, &out) <= 1e-4 + 1e-12);
    }

    #[test]
    fn double_precision() {
        let f = Field::<f64>::from_fn(Shape::d3(14, 12, 10), |c| {
            (c[0] as f64 * 0.2).sin() * 50.0 + c[1] as f64 * 0.3 + c[2] as f64
        });
        let sperr = Sperr::new();
        let bytes = sperr.compress(&f, ErrorBound::Rel(1e-5)).unwrap();
        let out = sperr.decompress(&bytes).unwrap();
        assert!(max_abs_error(&f, &out) <= 1e-5 * f.value_range() + 1e-12);
    }

    #[test]
    fn smooth_data_high_ratio() {
        let f = smooth(&[64, 48, 32]);
        let bytes = Sperr::new().compress(&f, ErrorBound::Abs(1e-3)).unwrap();
        let cr = (f.len() * 4) as f64 / bytes.len() as f64;
        assert!(cr > 8.0, "SPERR should excel on smooth data, CR {cr}");
    }

    #[test]
    fn truncated_and_foreign_rejected() {
        let f = smooth(&[16, 16, 8]);
        let sperr = Sperr::new();
        let bytes = sperr.compress(&f, ErrorBound::Abs(1e-3)).unwrap();
        let res: Result<Field<f32>, _> = sperr.decompress(&bytes[..bytes.len() / 2]);
        assert!(res.is_err());
        let mut wrong = bytes.clone();
        wrong[0] ^= 0x11;
        let res: Result<Field<f32>, _> = sperr.decompress(&wrong);
        assert!(res.is_err());
    }

    #[test]
    fn constant_field() {
        let f = Field::from_vec(Shape::d2(32, 32), vec![2.5f32; 1024]).unwrap();
        let sperr = Sperr::new();
        let bytes = sperr.compress(&f, ErrorBound::Abs(1e-4)).unwrap();
        let out = sperr.decompress(&bytes).unwrap();
        assert!(max_abs_error(&f, &out) <= 1e-4);
    }
}

//! Structural similarity (SSIM) for volumetric fields.
//!
//! QoZ's defining feature is *quality-metric-oriented* auto-tuning: the user
//! picks the metric (compression ratio at fixed bound, PSNR, or SSIM) and the
//! tuner optimizes for it. This module provides the windowed SSIM used for
//! that third target — the standard Wang et al. formula evaluated over
//! sliding cubic windows and averaged.

use qip_tensor::{Field, Scalar};

/// Window edge length (8, the convention for volumetric SSIM in the SZ/QoZ
/// evaluation tooling).
const WINDOW: usize = 8;
/// Window stride (overlapping windows at half the edge).
const STRIDE: usize = 4;
/// Stabilization constants (Wang et al.): `C1 = (K1·L)²`, `C2 = (K2·L)²`.
const K1: f64 = 0.01;
const K2: f64 = 0.03;

/// Mean SSIM between two equally-shaped fields.
///
/// Returns 1.0 for identical fields; panics on shape mismatch (reproduction
/// bug, not a runtime condition). Fields smaller than one window fall back to
/// a single whole-field window.
pub fn ssim<T: Scalar>(a: &Field<T>, b: &Field<T>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "ssim: shape mismatch");
    if a.is_empty() {
        return 1.0;
    }
    let range = a.value_range().max(f64::MIN_POSITIVE);
    let c1 = (K1 * range) * (K1 * range);
    let c2 = (K2 * range) * (K2 * range);

    let dims = a.shape().dims();
    let ndim = dims.len();
    let win: Vec<usize> = dims.iter().map(|&d| d.min(WINDOW)).collect();

    let mut acc = 0.0f64;
    let mut count = 0usize;
    // Window origins at STRIDE spacing, clamped so windows stay inside.
    let mut origin = vec![0usize; ndim];
    loop {
        let (sa, sb, saa, sbb, sab, n) = window_moments(a, b, &origin, &win);
        let nf = n as f64;
        let (ma, mb) = (sa / nf, sb / nf);
        let va = (saa / nf - ma * ma).max(0.0);
        let vb = (sbb / nf - mb * mb).max(0.0);
        let cov = sab / nf - ma * mb;
        let s = ((2.0 * ma * mb + c1) * (2.0 * cov + c2))
            / ((ma * ma + mb * mb + c1) * (va + vb + c2));
        acc += s;
        count += 1;

        // Advance the window odometer.
        let mut axis = ndim;
        loop {
            if axis == 0 {
                let mean = acc / count as f64;
                return mean.clamp(-1.0, 1.0);
            }
            axis -= 1;
            if origin[axis] + STRIDE + win[axis] <= dims[axis] {
                origin[axis] += STRIDE;
                break;
            }
            // Last window flush against the edge, then wrap.
            let last = dims[axis] - win[axis];
            if origin[axis] < last {
                origin[axis] = last;
                break;
            }
            origin[axis] = 0;
        }
    }
}

/// Raw moments over one window.
fn window_moments<T: Scalar>(
    a: &Field<T>,
    b: &Field<T>,
    origin: &[usize],
    win: &[usize],
) -> (f64, f64, f64, f64, f64, usize) {
    let ndim = origin.len();
    let strides = a.shape().strides();
    let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0.0, 0.0, 0.0, 0.0, 0.0);
    let n: usize = win.iter().product();
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut coords = origin.to_vec();
    for _ in 0..n {
        let flat: usize = coords.iter().zip(strides).map(|(&c, &s)| c * s).sum();
        let x = av[flat].to_f64();
        let y = bv[flat].to_f64();
        sa += x;
        sb += y;
        saa += x * x;
        sbb += y * y;
        sab += x * y;
        for axis in (0..ndim).rev() {
            coords[axis] += 1;
            if coords[axis] < origin[axis] + win[axis] {
                break;
            }
            coords[axis] = origin[axis];
        }
    }
    (sa, sb, saa, sbb, sab, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qip_tensor::Shape;

    fn field(dims: &[usize], f: impl FnMut(&[usize]) -> f32) -> Field<f32> {
        Field::from_fn(Shape::new(dims), f)
    }

    #[test]
    fn identical_fields_score_one() {
        let a = field(&[20, 20, 12], |c| (c[0] as f32 * 0.3).sin() + c[1] as f32 * 0.1);
        assert!((ssim(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_noise_scores_high() {
        let a = field(&[24, 24], |c| (c[0] + c[1]) as f32);
        let mut b = a.clone();
        for (i, v) in b.as_mut_slice().iter_mut().enumerate() {
            *v += if i % 2 == 0 { 0.01 } else { -0.01 };
        }
        let s = ssim(&a, &b);
        assert!(s > 0.95, "got {s}");
    }

    #[test]
    fn structural_destruction_scores_low() {
        // b is a shuffled (structure-destroyed) version of a.
        let a = field(&[16, 16], |c| ((c[0] * 16 + c[1]) as f32).sin() * 5.0 + c[0] as f32);
        let mut vals: Vec<f32> = a.as_slice().to_vec();
        vals.reverse();
        let b = Field::from_vec(a.shape().clone(), vals).unwrap();
        let s = ssim(&a, &b);
        assert!(s < 0.6, "got {s}");
    }

    #[test]
    fn ordering_matches_distortion_level() {
        let a = field(&[20, 20, 10], |c| (c[0] as f32 * 0.4).cos() * 3.0 + c[2] as f32 * 0.2);
        let noisy = |amp: f32| {
            let mut b = a.clone();
            let mut state = 7u64;
            for v in b.as_mut_slice() {
                state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                *v += amp * (((state >> 40) as f32 / 16_777_216.0) - 0.5);
            }
            b
        };
        let s_small = ssim(&a, &noisy(0.05));
        let s_large = ssim(&a, &noisy(1.0));
        assert!(s_small > s_large, "{s_small} vs {s_large}");
    }

    #[test]
    fn tiny_field_single_window() {
        let a = field(&[3, 3], |c| c[0] as f32);
        let b = field(&[3, 3], |c| c[0] as f32 + 0.001);
        let s = ssim(&a, &b);
        assert!(s > 0.99 && s <= 1.0, "got {s}");
    }

    #[test]
    fn one_dimensional_supported() {
        let a = field(&[64], |c| (c[0] as f32 * 0.2).sin());
        assert!((ssim(&a, &a) - 1.0).abs() < 1e-12);
    }
}

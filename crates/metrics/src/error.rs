//! Distortion metrics between original and decompressed fields.

use qip_tensor::{Field, Scalar};

/// Mean squared error between two equally-shaped fields.
///
/// Panics if the shapes differ (a reproduction bug, not a runtime condition).
pub fn mse<T: Scalar>(a: &Field<T>, b: &Field<T>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "mse: shape mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0f64;
    for (&x, &y) in a.as_slice().iter().zip(b.as_slice()) {
        let d = x.to_f64() - y.to_f64();
        acc += d * d;
    }
    acc / a.len() as f64
}

/// Peak signal-to-noise ratio (paper Sec. III-A):
/// `PSNR = 20·log10((max(d) − min(d)) / sqrt(MSE))`.
///
/// Returns `f64::INFINITY` for identical fields and `f64::NAN` when the
/// original field has zero value range (PSNR is undefined there).
pub fn psnr<T: Scalar>(original: &Field<T>, decompressed: &Field<T>) -> f64 {
    let range = original.value_range();
    let e = mse(original, decompressed);
    if e == 0.0 {
        return f64::INFINITY;
    }
    if range == 0.0 {
        return f64::NAN;
    }
    20.0 * (range / e.sqrt()).log10()
}

/// Maximum pointwise absolute error.
pub fn max_abs_error<T: Scalar>(a: &Field<T>, b: &Field<T>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "max_abs_error: shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x.to_f64() - y.to_f64()).abs())
        .fold(0.0, f64::max)
}

/// Maximum *value-range relative* error: max |d−d'| / (max(d) − min(d)),
/// the convention used by the paper's Table II ("Max Relative Error").
pub fn max_rel_error<T: Scalar>(a: &Field<T>, b: &Field<T>) -> f64 {
    let range = a.value_range();
    if range == 0.0 {
        return if max_abs_error(a, b) == 0.0 { 0.0 } else { f64::INFINITY };
    }
    max_abs_error(a, b) / range
}

/// Bundle of the distortion figures reported in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Mean squared error.
    pub mse: f64,
    /// Peak signal-to-noise ratio in dB.
    pub psnr: f64,
    /// Max pointwise absolute error.
    pub max_abs: f64,
    /// Max value-range-relative error.
    pub max_rel: f64,
}

impl ErrorStats {
    /// Compute all distortion figures in one pass-pair.
    pub fn between<T: Scalar>(original: &Field<T>, decompressed: &Field<T>) -> Self {
        ErrorStats {
            mse: mse(original, decompressed),
            psnr: psnr(original, decompressed),
            max_abs: max_abs_error(original, decompressed),
            max_rel: max_rel_error(original, decompressed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qip_tensor::Shape;

    fn f(data: Vec<f32>) -> Field<f32> {
        let n = data.len();
        Field::from_vec(Shape::d1(n), data).unwrap()
    }

    #[test]
    fn mse_zero_for_identical() {
        let a = f(vec![1.0, 2.0, 3.0]);
        assert_eq!(mse(&a, &a), 0.0);
        assert_eq!(psnr(&a, &a), f64::INFINITY);
    }

    #[test]
    fn mse_hand_computed() {
        let a = f(vec![0.0, 0.0]);
        let b = f(vec![1.0, 3.0]);
        assert!((mse(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn psnr_hand_computed() {
        // range = 10, mse = 1 -> PSNR = 20 dB.
        let a = f(vec![0.0, 10.0]);
        let b = f(vec![1.0, 9.0]);
        assert!((psnr(&a, &b) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn psnr_undefined_for_constant_original() {
        let a = f(vec![5.0, 5.0]);
        let b = f(vec![5.5, 4.5]);
        assert!(psnr(&a, &b).is_nan());
    }

    #[test]
    fn max_errors() {
        let a = f(vec![0.0, 4.0]);
        let b = f(vec![1.0, 4.5]);
        assert_eq!(max_abs_error(&a, &b), 1.0);
        assert!((max_rel_error(&a, &b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rel_error_constant_field() {
        let a = f(vec![2.0, 2.0]);
        assert_eq!(max_rel_error(&a, &a), 0.0);
        let b = f(vec![2.0, 3.0]);
        assert!(max_rel_error(&a, &b).is_infinite());
    }

    #[test]
    fn stats_bundle_agrees() {
        let a = f(vec![0.0, 10.0, 5.0]);
        let b = f(vec![0.5, 9.0, 5.0]);
        let s = ErrorStats::between(&a, &b);
        assert_eq!(s.mse, mse(&a, &b));
        assert_eq!(s.psnr, psnr(&a, &b));
        assert_eq!(s.max_abs, max_abs_error(&a, &b));
        assert_eq!(s.max_rel, max_rel_error(&a, &b));
    }
}

//! Shannon entropy of quantization index arrays.
//!
//! The paper uses entropy three ways: globally (problem formulation, Sec. V-A),
//! per rectangular region (the "regional entropy" above each subplot of
//! Fig. 5), and per slice along a plane with a stride (Fig. 4, where the
//! stride-2 sub-lattice isolates the last interpolation level).

use std::collections::HashMap;

/// Histogram of symbol occurrences.
pub fn symbol_histogram(symbols: impl IntoIterator<Item = i32>) -> HashMap<i32, u64> {
    let mut h = HashMap::new();
    for s in symbols {
        *h.entry(s).or_insert(0u64) += 1;
    }
    h
}

/// Shannon entropy `H = −Σ p·log2(p)` in bits/symbol of an i32 symbol stream.
///
/// Returns 0.0 for empty input.
pub fn entropy(symbols: &[i32]) -> f64 {
    if symbols.is_empty() {
        return 0.0;
    }
    let hist = symbol_histogram(symbols.iter().copied());
    let n = symbols.len() as f64;
    let mut h = 0.0;
    for &count in hist.values() {
        let p = count as f64 / n;
        h -= p * p.log2();
    }
    h
}

/// Entropy of the symbols inside the rectangular region
/// `origin..origin+extent` of a row-major array with the given `dims`,
/// sampling every `stride`-th point per axis.
///
/// This is the "regional entropy" annotated in the paper's Fig. 5, where
/// Regions 1 and 2 are plotted with strides 1×2 and 2×2.
pub fn entropy_region(
    q: &[i32],
    dims: &[usize],
    origin: &[usize],
    extent: &[usize],
    stride: &[usize],
) -> f64 {
    assert_eq!(dims.len(), origin.len());
    assert_eq!(dims.len(), extent.len());
    assert_eq!(dims.len(), stride.len());
    let ndim = dims.len();
    let mut strides_flat = vec![1usize; ndim];
    for i in (0..ndim.saturating_sub(1)).rev() {
        strides_flat[i] = strides_flat[i + 1] * dims[i + 1];
    }
    let counts: Vec<usize> = (0..ndim)
        .map(|a| {
            let avail = dims[a].saturating_sub(origin[a]).min(extent[a]);
            avail.div_ceil(stride[a].max(1))
        })
        .collect();
    let total: usize = counts.iter().product();
    if total == 0 {
        return 0.0;
    }
    let mut idx = vec![0usize; ndim];
    let mut samples = Vec::with_capacity(total);
    for _ in 0..total {
        let flat: usize = (0..ndim)
            .map(|a| (origin[a] + idx[a] * stride[a]) * strides_flat[a])
            .sum();
        samples.push(q[flat]);
        for a in (0..ndim).rev() {
            idx[a] += 1;
            if idx[a] < counts[a] {
                break;
            }
            idx[a] = 0;
        }
    }
    entropy(&samples)
}

/// Per-slice entropy along `axis` of a 3-D row-major array, sampling the
/// in-plane points at the given `stride` (paper Fig. 4 uses stride 2 to focus
/// on the last interpolation level).
///
/// Returns one entropy value per slice index along `axis`.
pub fn entropy_by_slice(q: &[i32], dims: &[usize; 3], axis: usize, stride: usize) -> Vec<f64> {
    assert!(axis < 3);
    assert_eq!(q.len(), dims[0] * dims[1] * dims[2]);
    let strides_flat = [dims[1] * dims[2], dims[2], 1];
    let others: Vec<usize> = (0..3).filter(|&a| a != axis).collect();
    let mut out = Vec::with_capacity(dims[axis]);
    for s in 0..dims[axis] {
        let mut samples = Vec::new();
        let mut i = 0;
        while i < dims[others[0]] {
            let mut j = 0;
            while j < dims[others[1]] {
                let flat =
                    s * strides_flat[axis] + i * strides_flat[others[0]] + j * strides_flat[others[1]];
                samples.push(q[flat]);
                j += stride;
            }
            i += stride;
        }
        out.push(entropy(&samples));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_constant_is_zero() {
        assert_eq!(entropy(&[7; 100]), 0.0);
        assert_eq!(entropy(&[]), 0.0);
    }

    #[test]
    fn entropy_of_uniform_two_symbols_is_one_bit() {
        let q: Vec<i32> = (0..100).map(|i| i % 2).collect();
        assert!((entropy(&q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_uniform_k_symbols_is_log2k() {
        let q: Vec<i32> = (0..1024).map(|i| i % 16).collect();
        assert!((entropy(&q) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_upper_bound_log2_n() {
        // n distinct symbols: entropy = log2(n), the maximum possible.
        let q: Vec<i32> = (0..37).collect();
        assert!((entropy(&q) - (37f64).log2()).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts() {
        let h = symbol_histogram([1, 1, 2, 3, 3, 3]);
        assert_eq!(h[&1], 2);
        assert_eq!(h[&2], 1);
        assert_eq!(h[&3], 3);
    }

    #[test]
    fn region_entropy_picks_subarray() {
        // 4x4 array: left half zeros, right half alternating.
        let dims = [4usize, 4usize];
        let mut q = vec![0i32; 16];
        for r in 0..4 {
            for c in 2..4 {
                q[r * 4 + c] = ((r + c) % 2) as i32;
            }
        }
        let left = entropy_region(&q, &dims, &[0, 0], &[4, 2], &[1, 1]);
        let right = entropy_region(&q, &dims, &[0, 2], &[4, 2], &[1, 1]);
        assert_eq!(left, 0.0);
        assert!((right - 1.0).abs() < 1e-12);
    }

    #[test]
    fn region_entropy_with_stride() {
        // Stride 2 on an alternating pattern samples a constant sub-lattice.
        let dims = [4usize, 4usize];
        let q: Vec<i32> = (0..16).map(|i| i % 2).collect();
        let h = entropy_region(&q, &dims, &[0, 0], &[4, 4], &[2, 2]);
        assert_eq!(h, 0.0);
    }

    #[test]
    fn region_entropy_clips_to_bounds() {
        let dims = [2usize, 2usize];
        let q = vec![0, 1, 2, 3];
        // extent larger than array: clipped, no panic.
        let h = entropy_region(&q, &dims, &[0, 0], &[10, 10], &[1, 1]);
        assert!((h - 2.0).abs() < 1e-12);
        // origin outside: empty region.
        assert_eq!(entropy_region(&q, &dims, &[5, 0], &[1, 1], &[1, 1]), 0.0);
    }

    #[test]
    fn by_slice_shapes_and_values() {
        // 2x3x4 volume, slice entropies along each axis have matching lengths.
        let dims = [2usize, 3, 4];
        let q: Vec<i32> = (0..24).map(|i| i % 3).collect();
        assert_eq!(entropy_by_slice(&q, &dims, 0, 1).len(), 2);
        assert_eq!(entropy_by_slice(&q, &dims, 1, 1).len(), 3);
        assert_eq!(entropy_by_slice(&q, &dims, 2, 1).len(), 4);
    }

    #[test]
    fn by_slice_constant_slices() {
        // Volume where value == slice index along axis 0: each slice constant.
        let dims = [3usize, 4, 5];
        let mut q = vec![0i32; 60];
        for z in 0..3 {
            for i in 0..20 {
                q[z * 20 + i] = z as i32;
            }
        }
        let h = entropy_by_slice(&q, &dims, 0, 1);
        assert!(h.iter().all(|&e| e == 0.0));
        // Along the other axes every slice mixes all three symbols equally.
        let h1 = entropy_by_slice(&q, &dims, 1, 1);
        for e in h1 {
            assert!((e - (3f64).log2()).abs() < 1e-9);
        }
    }

    #[test]
    fn by_slice_stride_subsamples() {
        let dims = [1usize, 4, 4];
        // Checkerboard in the plane; stride-2 sampling sees a constant.
        let q: Vec<i32> = (0..16).map(|i| (i / 4 + i % 4) % 2).collect();
        let full = entropy_by_slice(&q, &dims, 0, 1);
        let strided = entropy_by_slice(&q, &dims, 0, 2);
        assert!((full[0] - 1.0).abs() < 1e-12);
        assert_eq!(strided[0], 0.0);
    }
}

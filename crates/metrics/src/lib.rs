//! Quality and compressibility metrics (paper Sec. III-A).
//!
//! Implements the assessment toolkit used throughout the evaluation:
//! PSNR / MSE / max errors between original and decompressed fields,
//! compression ratio and bit-rate, and Shannon entropy of quantization index
//! arrays — globally, over rectangular regions (paper Fig. 5), and per slice
//! along a plane (paper Fig. 4).

#![warn(missing_docs)]

mod entropy;
mod error;
mod ssim;

pub use entropy::{entropy, entropy_by_slice, entropy_region, symbol_histogram};
pub use error::{max_abs_error, max_rel_error, mse, psnr, ErrorStats};
pub use ssim::ssim;

use qip_tensor::Scalar;

/// Compression ratio: original bytes over compressed bytes.
pub fn compression_ratio<T: Scalar>(n_samples: usize, compressed_bytes: usize) -> f64 {
    if compressed_bytes == 0 {
        return f64::INFINITY;
    }
    (n_samples * T::BYTES) as f64 / compressed_bytes as f64
}

/// Bit-rate: average bits per sample in the compressed stream.
///
/// Equals `T::BITS / CR` (paper Sec. III-A).
pub fn bit_rate<T: Scalar>(n_samples: usize, compressed_bytes: usize) -> f64 {
    if n_samples == 0 {
        return 0.0;
    }
    (compressed_bytes * 8) as f64 / n_samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cr_and_bitrate_consistent() {
        // 1000 f32 samples compressed to 400 bytes: CR = 10, bitrate = 3.2.
        let cr = compression_ratio::<f32>(1000, 400);
        let br = bit_rate::<f32>(1000, 400);
        assert!((cr - 10.0).abs() < 1e-12);
        assert!((br - 3.2).abs() < 1e-12);
        assert!((br - 32.0 / cr).abs() < 1e-12);
    }

    #[test]
    fn cr_zero_bytes_is_infinite() {
        assert!(compression_ratio::<f64>(10, 0).is_infinite());
    }

    #[test]
    fn bitrate_double_precision() {
        // CR of 16 on doubles -> 4 bits/sample.
        let br = bit_rate::<f64>(100, 100 * 8 / 16);
        assert!((br - 4.0).abs() < 1e-12);
    }

    #[test]
    fn bitrate_empty() {
        assert_eq!(bit_rate::<f32>(0, 0), 0.0);
    }
}

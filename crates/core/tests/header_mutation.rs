//! Edge-case tests for `StreamHeader::read` against hand-forged headers:
//! the header is the first thing a decoder parses from an untrusted stream,
//! so every field must be range-checked before any of its values sizes an
//! allocation or drives arithmetic.

use qip_codec::{ByteReader, ByteWriter};
use qip_core::StreamHeader;
use qip_tensor::Shape;

const MAGIC: u8 = 0x21;
const BITS: u8 = 32;

fn forge(ndim: u8, dims: &[u64], eb: f64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(MAGIC);
    w.put_u8(BITS);
    w.put_u8(ndim);
    for &d in dims {
        w.put_uvarint(d);
    }
    w.put_f64(eb);
    w.finish()
}

fn read(bytes: &[u8]) -> Result<StreamHeader, qip_core::CompressError> {
    StreamHeader::read(&mut ByteReader::new(bytes), MAGIC, BITS)
}

#[test]
fn valid_header_roundtrips() {
    let h = StreamHeader {
        magic: MAGIC,
        scalar_bits: BITS,
        shape: Shape::new(&[12, 9, 31]),
        abs_eb: 1e-4,
    };
    let mut w = ByteWriter::new();
    h.write(&mut w);
    let got = read(&w.finish()).expect("valid header");
    assert_eq!(got, h);
}

#[test]
fn ndim_out_of_range_rejected() {
    for ndim in [0u8, 5, 17, 255] {
        let dims = vec![4u64; ndim as usize];
        assert!(read(&forge(ndim, &dims, 1e-3)).is_err(), "ndim {ndim} accepted");
    }
}

#[test]
fn implausible_extent_rejected() {
    // A single extent above 2^40 must be rejected even before the volume
    // check (it would overflow stride arithmetic downstream).
    assert!(read(&forge(1, &[(1 << 40) + 1], 1e-3)).is_err());
    assert!(read(&forge(1, &[u64::MAX], 1e-3)).is_err());
}

#[test]
fn implausible_volume_rejected() {
    // Three extents of 2^20 each pass the per-extent cap but multiply to
    // 2^60, far beyond any buffer a decoder may allocate.
    assert!(read(&forge(3, &[1 << 20, 1 << 20, 1 << 20], 1e-3)).is_err());
    // Just inside the cap, the header parses.
    assert!(read(&forge(3, &[1 << 12, 1 << 12, 1 << 12], 1e-3)).is_ok());
}

#[test]
fn degenerate_error_bounds_rejected() {
    for eb in [0.0, -1.0, -1e300, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert!(read(&forge(2, &[8, 8], eb)).is_err(), "eb {eb} accepted");
    }
    // Tiny-but-positive is legal (subnormals are a valid, if extreme, bound).
    assert!(read(&forge(2, &[8, 8], 1e-308)).is_ok());
}

#[test]
fn zero_extents_are_legal_empty_fields() {
    // Empty fields round-trip in every compressor; the header must agree.
    let h = read(&forge(2, &[0, 5], 1e-3)).expect("empty field header");
    assert!(h.shape.is_empty());
}

#[test]
fn wrong_magic_and_width_rejected() {
    let bytes = forge(2, &[4, 4], 1e-3);
    assert!(StreamHeader::read(&mut ByteReader::new(&bytes), MAGIC + 1, BITS).is_err());
    assert!(StreamHeader::read(&mut ByteReader::new(&bytes), MAGIC, 64).is_err());
}

#[test]
fn every_truncation_of_a_header_errors() {
    let bytes = forge(3, &[31, 17, 9], 2.5e-3);
    for cut in 0..bytes.len() {
        assert!(read(&bytes[..cut]).is_err(), "header prefix {cut} parsed");
    }
}

#[test]
fn every_single_byte_mutation_is_panic_free() {
    // Exhaustive byte × value is cheap at header scale (~15 bytes): any
    // mutation must parse or error, never panic. This is the header-level
    // analog of the fault suite's stream-level guarantee.
    let bytes = forge(3, &[31, 17, 9], 2.5e-3);
    for pos in 0..bytes.len() {
        for v in 0..=255u8 {
            let mut bad = bytes.clone();
            bad[pos] = v;
            let _ = read(&bad);
        }
    }
}

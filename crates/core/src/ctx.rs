//! Reusable compression scratch arena.
//!
//! Every `compress`/`decompress` call in the workspace historically allocated
//! its working state — quantization-index planes, predicted-index streams,
//! lattice point lists, per-level quantizers, entropy-stage output — from
//! scratch. A [`CompressCtx`] owns all of that once; threading it through
//! [`Compressor::compress_into`](crate::Compressor::compress_into) /
//! [`Compressor::decompress_into`](crate::Compressor::decompress_into) lets a
//! long-running caller (bench harness, streaming service, CLI batch mode)
//! amortize those allocations across calls.
//!
//! The arena is deliberately type-erased where possible (`Vec<i32>`,
//! `Vec<u8>`) and typed through [`ScalarPools`] where not, so one context
//! serves fields of any shape and scalar type interchangeably. Compressors
//! must clear/resize every buffer they use before reading it — reuse may
//! never leak state between calls (pinned by the workspace equivalence
//! tests).

use qip_quant::QuantizerBank;
use qip_tensor::ScalarPools;

/// Scratch arena for the buffer-reusing compression paths.
///
/// All fields are plain buffers; `CompressCtx::default()` is empty and every
/// buffer grows on first use, so creating one is cheap. A context is not
/// shareable across threads mid-call (the compressors take `&mut`), but may
/// be moved freely between calls.
#[derive(Debug, Default)]
pub struct CompressCtx {
    /// Reconstructed quantization-index plane (`qstore` in the engines).
    pub qstore: Vec<i32>,
    /// Predicted/transformed index stream handed to the entropy stage.
    pub qprime: Vec<i32>,
    /// Lattice point list: coordinates padded to 4 axes plus the flat index.
    pub points: Vec<([usize; 4], usize)>,
    /// Anchor-channel (or coarse-level) byte scratch.
    pub anchors: Vec<u8>,
    /// Unpredictable-channel byte scratch.
    pub unpred: Vec<u8>,
    /// `(flat index, value)` pair scratch for transform sweeps.
    pub pairs: Vec<(usize, f64)>,
    /// Typed scalar working planes (`f32`/`f64` working copies of fields).
    pub pools: ScalarPools,
    /// Per-level quantizer bank.
    pub quantizers: QuantizerBank,
    /// Entropy-stage / nested-stream output scratch.
    pub stream: Vec<u8>,
}

impl CompressCtx {
    /// Create an empty context. Buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop all retained capacity, returning the context to its pristine
    /// state. Useful after compressing an unusually large field.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_empty_and_reset_drops_capacity() {
        let mut ctx = CompressCtx::new();
        assert!(ctx.qstore.is_empty());
        ctx.qstore.resize(1024, 0);
        ctx.stream.extend_from_slice(&[1, 2, 3]);
        ctx.reset();
        assert!(ctx.qstore.is_empty() && ctx.qstore.capacity() == 0);
        assert!(ctx.stream.is_empty());
    }
}

//! Self-describing stream header shared by all compressors.

use crate::CompressError;
use qip_codec::{ByteReader, ByteWriter};
use qip_tensor::Shape;

/// Common stream header: compressor magic, scalar width, shape, absolute
/// error bound actually used.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamHeader {
    /// Compressor identity byte (each compressor crate defines its own).
    pub magic: u8,
    /// Bits per scalar sample (32 or 64).
    pub scalar_bits: u8,
    /// Field shape.
    pub shape: Shape,
    /// Resolved absolute error bound.
    pub abs_eb: f64,
}

impl StreamHeader {
    /// Serialize into `w`.
    pub fn write(&self, w: &mut ByteWriter) {
        w.put_u8(self.magic);
        w.put_u8(self.scalar_bits);
        w.put_u8(self.shape.ndim() as u8);
        for &d in self.shape.dims() {
            w.put_uvarint(d as u64);
        }
        w.put_f64(self.abs_eb);
    }

    /// Parse from `r`, verifying the expected magic and scalar width.
    pub fn read(
        r: &mut ByteReader,
        expect_magic: u8,
        expect_bits: u8,
    ) -> Result<Self, CompressError> {
        let magic = r.get_u8()?;
        if magic != expect_magic {
            return Err(CompressError::WrongFormat("magic byte mismatch"));
        }
        let scalar_bits = r.get_u8()?;
        if scalar_bits != expect_bits {
            return Err(CompressError::WrongFormat("scalar width mismatch"));
        }
        let ndim = r.get_u8()? as usize;
        if ndim == 0 || ndim > 4 {
            return Err(CompressError::WrongFormat("dimensionality out of range"));
        }
        let mut dims = Vec::with_capacity(ndim);
        let mut volume: u128 = 1;
        for _ in 0..ndim {
            let d = r.get_uvarint()? as usize;
            if d > (1 << 40) {
                return Err(CompressError::WrongFormat("implausible extent"));
            }
            volume = volume.saturating_mul(d.max(1) as u128);
            dims.push(d);
        }
        // Allocation guard: decoders build buffers of this volume, so a
        // corrupted header must not be able to demand absurd memory.
        if volume > (1u128 << 36) {
            return Err(CompressError::WrongFormat("implausible field volume"));
        }
        let abs_eb = r.get_f64()?;
        if !(abs_eb > 0.0 && abs_eb.is_finite()) {
            return Err(CompressError::WrongFormat("non-positive error bound"));
        }
        Ok(StreamHeader { magic, scalar_bits, shape: Shape::new(&dims), abs_eb })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = StreamHeader {
            magic: 0xA1,
            scalar_bits: 32,
            shape: Shape::d3(10, 20, 30),
            abs_eb: 1e-4,
        };
        let mut w = ByteWriter::new();
        h.write(&mut w);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        let g = StreamHeader::read(&mut r, 0xA1, 32).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn wrong_magic_rejected() {
        let h = StreamHeader { magic: 1, scalar_bits: 64, shape: Shape::d1(5), abs_eb: 0.5 };
        let mut w = ByteWriter::new();
        h.write(&mut w);
        let bytes = w.finish();
        assert!(StreamHeader::read(&mut ByteReader::new(&bytes), 2, 64).is_err());
        assert!(StreamHeader::read(&mut ByteReader::new(&bytes), 1, 32).is_err());
    }

    #[test]
    fn truncated_rejected() {
        let h = StreamHeader { magic: 1, scalar_bits: 32, shape: Shape::d2(4, 4), abs_eb: 1.0 };
        let mut w = ByteWriter::new();
        h.write(&mut w);
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            assert!(StreamHeader::read(&mut ByteReader::new(&bytes[..cut]), 1, 32).is_err());
        }
    }

    #[test]
    fn bad_eb_rejected() {
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_u8(32);
        w.put_u8(1);
        w.put_uvarint(8);
        w.put_f64(-1.0);
        assert!(StreamHeader::read(&mut ByteReader::new(&w.finish()), 1, 32).is_err());
    }
}

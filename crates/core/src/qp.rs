//! The adaptive quantization index prediction engine (paper Sec. V).
//!
//! QP is a reversible transform on the quantization index array, applied
//! point-by-point *inside* the base compressor's quantization loop
//! (Algorithm 1): the compressor emits `Q'[i] = Q[i] − quant_pred(...)` and
//! the decompressor inverts it with `Q[i] = Q'[i] + quant_pred(...)`, using
//! only indices it has already reconstructed. The engine is pure — the base
//! compressor supplies the neighbor indices on the current pass lattice via
//! [`Neighbors`] — which is what makes the method generic across MGARD, SZ3,
//! QoZ and HPEZ.
//!
//! The configuration axes mirror the paper's exploration:
//! * [`PredMode`] — prediction dimension (Fig. 7): 1-D along the
//!   interpolation direction (`Back1`) or either orthogonal axis
//!   (`Top1`/`Left1`), 2-D Lorenzo on the orthogonal plane, 3-D Lorenzo.
//! * [`Condition`] — gating cases I–IV (Fig. 8).
//! * `max_level` — highest interpolation level that still predicts (Fig. 9).
//!
//! [`QpConfig::best_fit`] is the paper's Algorithm 2: 2-D Lorenzo, Case III,
//! levels 1–2.

use crate::CompressError;
use qip_codec::{ByteReader, ByteWriter};
use qip_predict::{lorenzo2, lorenzo3};
use qip_quant::UNPRED;

/// Prediction dimension/direction for `quant_pred` (paper Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredMode {
    /// QP disabled: the identity transform.
    Off,
    /// 1-D along the interpolation direction ("1D-Back").
    Back1,
    /// 1-D along the first orthogonal axis ("1D-Top").
    Top1,
    /// 1-D along the second orthogonal axis ("1D-Left").
    Left1,
    /// 2-D Lorenzo on the plane orthogonal to the interpolation direction
    /// (the paper's pick).
    Lorenzo2d,
    /// 3-D Lorenzo including the interpolation direction.
    Lorenzo3d,
}

impl PredMode {
    /// Stable stream tag.
    pub fn tag(self) -> u8 {
        match self {
            PredMode::Off => 0,
            PredMode::Back1 => 1,
            PredMode::Top1 => 2,
            PredMode::Left1 => 3,
            PredMode::Lorenzo2d => 4,
            PredMode::Lorenzo3d => 5,
        }
    }

    /// Inverse of [`PredMode::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => PredMode::Off,
            1 => PredMode::Back1,
            2 => PredMode::Top1,
            3 => PredMode::Left1,
            4 => PredMode::Lorenzo2d,
            5 => PredMode::Lorenzo3d,
            _ => return None,
        })
    }
}

/// Adaptive gating condition (paper Fig. 8 / Sec. V-C2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Condition {
    /// Case I: predict everywhere the neighbors exist.
    CaseI,
    /// Case II: skip when any involved neighbor is unpredictable.
    CaseII,
    /// Case III: Case II **and** the left/top neighbors share a strict sign
    /// (the clustering indicator; the paper's pick).
    CaseIII,
    /// Case IV: Case II **and** *all* involved neighbors share a strict sign.
    CaseIV,
}

impl Condition {
    /// Stable stream tag.
    pub fn tag(self) -> u8 {
        match self {
            Condition::CaseI => 0,
            Condition::CaseII => 1,
            Condition::CaseIII => 2,
            Condition::CaseIV => 3,
        }
    }

    /// Inverse of [`Condition::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => Condition::CaseI,
            1 => Condition::CaseII,
            2 => Condition::CaseIII,
            3 => Condition::CaseIV,
            _ => return None,
        })
    }
}

/// Neighbor quantization indices on the current pass lattice, as seen from
/// the point being coded. `None` means the neighbor does not exist (outside
/// the field, or not part of this pass).
///
/// Axis naming follows the paper: *left*/*top* span the plane orthogonal to
/// the interpolation direction; *back* is along the interpolation direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Neighbors {
    /// Orthogonal-plane neighbor at −s₁.
    pub left: Option<i32>,
    /// Orthogonal-plane neighbor at −s₂.
    pub top: Option<i32>,
    /// Orthogonal-plane diagonal at −s₁−s₂.
    pub diag: Option<i32>,
    /// Neighbor at −s_b along the interpolation direction.
    pub back: Option<i32>,
    /// −s₁−s_b neighbor (3-D Lorenzo only).
    pub left_back: Option<i32>,
    /// −s₂−s_b neighbor (3-D Lorenzo only).
    pub top_back: Option<i32>,
    /// −s₁−s₂−s_b neighbor (3-D Lorenzo only).
    pub diag_back: Option<i32>,
}

impl Neighbors {
    /// Plane-only neighbors (sufficient for all modes except 3-D Lorenzo).
    pub fn plane(left: Option<i32>, top: Option<i32>, diag: Option<i32>) -> Self {
        Neighbors { left, top, diag, ..Default::default() }
    }
}

/// QP configuration: one per compressed stream, stored in the header so the
/// decompressor applies the identical inverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QpConfig {
    /// Prediction dimension/direction.
    pub mode: PredMode,
    /// Gating condition.
    pub condition: Condition,
    /// Highest interpolation level on which prediction fires (level 1 is the
    /// finest). Levels above carry <2 % of the data (paper Sec. V-C3).
    pub max_level: usize,
}

impl QpConfig {
    /// The paper's best-fit configuration (Algorithm 2): 2-D Lorenzo,
    /// Case III, levels 1–2.
    pub fn best_fit() -> Self {
        QpConfig { mode: PredMode::Lorenzo2d, condition: Condition::CaseIII, max_level: 2 }
    }

    /// QP disabled (the vanilla base compressor).
    pub fn off() -> Self {
        QpConfig { mode: PredMode::Off, condition: Condition::CaseI, max_level: 0 }
    }

    /// Whether this config ever transforms anything.
    pub fn is_enabled(&self) -> bool {
        self.mode != PredMode::Off && self.max_level >= 1
    }

    /// Serialize (3 bytes).
    pub fn write(&self, w: &mut ByteWriter) {
        w.put_u8(self.mode.tag());
        w.put_u8(self.condition.tag());
        w.put_u8(self.max_level.min(255) as u8);
    }

    /// Deserialize a config written by [`QpConfig::write`].
    pub fn read(r: &mut ByteReader) -> Result<Self, CompressError> {
        let mode = PredMode::from_tag(r.get_u8()?)
            .ok_or(CompressError::WrongFormat("bad QP mode tag"))?;
        let condition = Condition::from_tag(r.get_u8()?)
            .ok_or(CompressError::WrongFormat("bad QP condition tag"))?;
        let max_level = r.get_u8()? as usize;
        Ok(QpConfig { mode, condition, max_level })
    }
}

impl Default for QpConfig {
    fn default() -> Self {
        QpConfig::best_fit()
    }
}

/// The QP transform engine. Stateless; cheap to copy into inner loops.
///
/// ```
/// use qip_core::{Neighbors, QpConfig, QpEngine};
///
/// let qp = QpEngine::new(QpConfig::best_fit());
/// // A positive cluster on the orthogonal plane (paper Fig. 5's phenomenon):
/// let nb = Neighbors::plane(Some(4), Some(5), Some(4));
/// // 2-D Lorenzo predicts 4 + 5 − 4 = 5; the clustered index collapses to 0.
/// let q = 5;
/// let q_prime = qp.transform(q, 1, &nb);
/// assert_eq!(q_prime, 0);
/// // The decompressor inverts it exactly from the same neighbors:
/// assert_eq!(qp.recover(q_prime, 1, &nb), q);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct QpEngine {
    config: QpConfig,
}

/// In Case I the unpredictable label takes part in arithmetic; its magnitude
/// is meaningless (real SZ3 stores unpredictables in a reserved bin), so it
/// contributes zero — matching the paper's observation that Case I degrades
/// near unpredictable data rather than exploding.
#[inline]
fn val(v: i32) -> i64 {
    if v == UNPRED {
        0
    } else {
        v as i64
    }
}

impl QpEngine {
    /// Engine for a fixed configuration.
    pub fn new(config: QpConfig) -> Self {
        QpEngine { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &QpConfig {
        &self.config
    }

    /// Neighbors involved in the configured mode, or `None` when QP is off.
    fn involved(&self, nb: &Neighbors) -> Option<[Option<i32>; 7]> {
        Some(match self.config.mode {
            PredMode::Off => return None,
            PredMode::Back1 => [nb.back, None, None, None, None, None, None],
            PredMode::Top1 => [nb.top, None, None, None, None, None, None],
            PredMode::Left1 => [nb.left, None, None, None, None, None, None],
            PredMode::Lorenzo2d => [nb.left, nb.top, nb.diag, None, None, None, None],
            PredMode::Lorenzo3d => [
                nb.left,
                nb.top,
                nb.back,
                nb.diag,
                nb.left_back,
                nb.top_back,
                nb.diag_back,
            ],
        })
    }

    /// Number of neighbor slots the configured mode reads.
    fn involved_len(&self) -> usize {
        match self.config.mode {
            PredMode::Off => 0,
            PredMode::Back1 | PredMode::Top1 | PredMode::Left1 => 1,
            PredMode::Lorenzo2d => 3,
            PredMode::Lorenzo3d => 7,
        }
    }

    /// Whether the gating condition admits a prediction at this point (paper
    /// Fig. 8): QP enabled, level within range, every involved neighbor
    /// present, and the configured [`Condition`] satisfied. This is the
    /// "accept" event in the per-level gating-rate telemetry; when the gate
    /// is open, [`QpEngine::predict`] computes the actual compensation.
    pub fn gate_open(&self, level: usize, nb: &Neighbors) -> bool {
        self.gated_predict(level, nb).is_some()
    }

    /// Fused gate check + compensation in one neighbor scan: `Some(c)` when
    /// the gate is open (where `c` is what [`QpEngine::predict`] returns),
    /// `None` when it is closed. [`QpEngine::gate_open`] and
    /// [`QpEngine::predict`] are thin wrappers; the chunked pipeline drivers
    /// call this directly so the hot loop scans the neighbor set once
    /// instead of once for the gate and again for the prediction.
    pub fn gated_predict(&self, level: usize, nb: &Neighbors) -> Option<i32> {
        if !self.config.is_enabled() || level > self.config.max_level {
            return None;
        }
        let involved = self.involved(nb)?;
        let involved = &involved[..self.involved_len()];
        if involved.iter().any(|n| n.is_none()) {
            return None;
        }

        let any_unpred = involved.iter().any(|n| n.unwrap() == UNPRED);
        let open = match self.config.condition {
            Condition::CaseI => true,
            Condition::CaseII => !any_unpred,
            Condition::CaseIII => {
                if any_unpred {
                    return None;
                }
                // Strict same-sign check on the plane neighbors (or the
                // single neighbor for 1-D modes).
                let (a, b) = match self.config.mode {
                    PredMode::Lorenzo2d | PredMode::Lorenzo3d => {
                        (nb.left.unwrap(), nb.top.unwrap())
                    }
                    PredMode::Back1 => (nb.back.unwrap(), nb.back.unwrap()),
                    PredMode::Top1 => (nb.top.unwrap(), nb.top.unwrap()),
                    PredMode::Left1 => (nb.left.unwrap(), nb.left.unwrap()),
                    PredMode::Off => unreachable!(),
                };
                (a > 0 && b > 0) || (a < 0 && b < 0)
            }
            Condition::CaseIV => {
                if any_unpred {
                    return None;
                }
                let all_pos = involved.iter().all(|n| n.unwrap() > 0);
                let all_neg = involved.iter().all(|n| n.unwrap() < 0);
                all_pos || all_neg
            }
        };
        if !open {
            return None;
        }

        // Case I may involve the sentinel; substitute zero there.
        let get = |n: Option<i32>| val(n.unwrap());
        let c: i64 = match self.config.mode {
            PredMode::Off => 0,
            PredMode::Back1 => get(nb.back),
            PredMode::Top1 => get(nb.top),
            PredMode::Left1 => get(nb.left),
            PredMode::Lorenzo2d => lorenzo2(get(nb.left), get(nb.top), get(nb.diag)),
            PredMode::Lorenzo3d => lorenzo3(
                get(nb.left),
                get(nb.top),
                get(nb.back),
                get(nb.diag),
                get(nb.left_back),
                get(nb.top_back),
                get(nb.diag_back),
            ),
        };
        Some(c as i32)
    }

    /// The `quant_pred` subroutine (paper Algorithm 2, generalized to every
    /// configuration): the compensation to subtract from the current index.
    pub fn predict(&self, level: usize, nb: &Neighbors) -> i32 {
        self.gated_predict(level, nb).unwrap_or(0)
    }

    /// Compression side (Algorithm 1 line 7): `Q'[i] = Q[i] − quant_pred`.
    /// Unpredictable labels pass through untouched so the decompressor can
    /// recognize them before inverting.
    #[inline]
    pub fn transform(&self, q: i32, level: usize, nb: &Neighbors) -> i32 {
        if q == UNPRED {
            q
        } else {
            // Wrapping keeps transform/recover exact inverses of each other
            // over all of i32, so a corrupted index array cannot overflow
            // (and panic) the debug build on the decode side.
            q.wrapping_sub(self.predict(level, nb))
        }
    }

    /// Decompression side: `Q[i] = Q'[i] + quant_pred`, the exact inverse of
    /// [`QpEngine::transform`] given identical neighbors.
    #[inline]
    pub fn recover(&self, q_prime: i32, level: usize, nb: &Neighbors) -> i32 {
        if q_prime == UNPRED {
            q_prime
        } else {
            q_prime.wrapping_add(self.predict(level, nb))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_modes() -> Vec<PredMode> {
        vec![
            PredMode::Off,
            PredMode::Back1,
            PredMode::Top1,
            PredMode::Left1,
            PredMode::Lorenzo2d,
            PredMode::Lorenzo3d,
        ]
    }

    fn all_conditions() -> Vec<Condition> {
        vec![Condition::CaseI, Condition::CaseII, Condition::CaseIII, Condition::CaseIV]
    }

    fn full_neighbors(v: i32) -> Neighbors {
        Neighbors {
            left: Some(v),
            top: Some(v),
            diag: Some(v),
            back: Some(v),
            left_back: Some(v),
            top_back: Some(v),
            diag_back: Some(v),
        }
    }

    #[test]
    fn config_tags_roundtrip() {
        for m in all_modes() {
            assert_eq!(PredMode::from_tag(m.tag()), Some(m));
        }
        for c in all_conditions() {
            assert_eq!(Condition::from_tag(c.tag()), Some(c));
        }
        assert_eq!(PredMode::from_tag(99), None);
        assert_eq!(Condition::from_tag(99), None);
    }

    #[test]
    fn config_stream_roundtrip() {
        for m in all_modes() {
            for c in all_conditions() {
                let cfg = QpConfig { mode: m, condition: c, max_level: 3 };
                let mut w = ByteWriter::new();
                cfg.write(&mut w);
                let bytes = w.finish();
                let got = QpConfig::read(&mut ByteReader::new(&bytes)).unwrap();
                assert_eq!(got, cfg);
            }
        }
    }

    #[test]
    fn best_fit_matches_algorithm2() {
        let c = QpConfig::best_fit();
        assert_eq!(c.mode, PredMode::Lorenzo2d);
        assert_eq!(c.condition, Condition::CaseIII);
        assert_eq!(c.max_level, 2);
        assert!(c.is_enabled());
        assert!(!QpConfig::off().is_enabled());
    }

    #[test]
    fn transform_recover_inverse_all_configs() {
        // Reversibility f⁻¹(f(Q)) = Q for every mode × condition × neighbor set.
        let neighbor_sets = [
            Neighbors::default(),
            Neighbors::plane(Some(3), Some(2), Some(1)),
            Neighbors::plane(Some(-3), Some(-2), Some(-1)),
            Neighbors::plane(Some(3), None, Some(1)),
            Neighbors::plane(Some(UNPRED), Some(2), Some(1)),
            full_neighbors(5),
            full_neighbors(-7),
            full_neighbors(UNPRED),
        ];
        for m in all_modes() {
            for c in all_conditions() {
                for lvl in [1usize, 2, 3] {
                    let eng = QpEngine::new(QpConfig { mode: m, condition: c, max_level: 2 });
                    for nb in &neighbor_sets {
                        for q in [-100, -1, 0, 1, 100, UNPRED] {
                            let t = eng.transform(q, lvl, nb);
                            assert_eq!(
                                eng.recover(t, lvl, nb),
                                q,
                                "mode={m:?} cond={c:?} lvl={lvl} nb={nb:?} q={q}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn best_fit_predicts_cluster() {
        // A positive cluster: left=top=diag=4 predicts 4.
        let eng = QpEngine::new(QpConfig::best_fit());
        let nb = Neighbors::plane(Some(4), Some(4), Some(4));
        assert_eq!(eng.predict(1, &nb), 4);
        assert_eq!(eng.transform(4, 1, &nb), 0); // cluster collapses to zero
    }

    #[test]
    fn case3_requires_same_strict_sign() {
        let eng = QpEngine::new(QpConfig::best_fit());
        // Mixed signs: no prediction.
        assert_eq!(eng.predict(1, &Neighbors::plane(Some(4), Some(-4), Some(0))), 0);
        // Zero neighbor: no prediction (strict sign).
        assert_eq!(eng.predict(1, &Neighbors::plane(Some(0), Some(4), Some(0))), 0);
        // Both negative: predicts.
        assert_eq!(eng.predict(1, &Neighbors::plane(Some(-2), Some(-3), Some(-1))), -4);
    }

    #[test]
    fn case2_skips_unpredictable_neighbors() {
        let eng = QpEngine::new(QpConfig {
            mode: PredMode::Lorenzo2d,
            condition: Condition::CaseII,
            max_level: 2,
        });
        assert_eq!(eng.predict(1, &Neighbors::plane(Some(UNPRED), Some(4), Some(1))), 0);
        assert_eq!(eng.predict(1, &Neighbors::plane(Some(2), Some(4), Some(1))), 5);
    }

    #[test]
    fn case1_predicts_through_unpredictable_as_zero() {
        let eng = QpEngine::new(QpConfig {
            mode: PredMode::Lorenzo2d,
            condition: Condition::CaseI,
            max_level: 2,
        });
        // UNPRED left counts as 0: prediction = 0 + 4 − 1 = 3.
        assert_eq!(eng.predict(1, &Neighbors::plane(Some(UNPRED), Some(4), Some(1))), 3);
    }

    #[test]
    fn case4_needs_all_same_sign() {
        let eng = QpEngine::new(QpConfig {
            mode: PredMode::Lorenzo2d,
            condition: Condition::CaseIV,
            max_level: 2,
        });
        // left/top positive but diag negative: Case IV refuses, Case III accepts.
        let nb = Neighbors::plane(Some(2), Some(3), Some(-1));
        assert_eq!(eng.predict(1, &nb), 0);
        let eng3 = QpEngine::new(QpConfig::best_fit());
        assert_eq!(eng3.predict(1, &nb), 6);
    }

    #[test]
    fn level_gate() {
        let eng = QpEngine::new(QpConfig::best_fit()); // max_level = 2
        let nb = Neighbors::plane(Some(2), Some(3), Some(1));
        assert_ne!(eng.predict(1, &nb), 0);
        assert_ne!(eng.predict(2, &nb), 0);
        assert_eq!(eng.predict(3, &nb), 0);
        assert_eq!(eng.predict(9, &nb), 0);
    }

    #[test]
    fn missing_neighbor_disables_prediction() {
        let eng = QpEngine::new(QpConfig::best_fit());
        assert_eq!(eng.predict(1, &Neighbors::plane(None, Some(3), Some(1))), 0);
        assert_eq!(eng.predict(1, &Neighbors::plane(Some(3), None, Some(1))), 0);
        assert_eq!(eng.predict(1, &Neighbors::plane(Some(3), Some(3), None)), 0);
    }

    #[test]
    fn one_d_modes_use_their_axis() {
        let nb = Neighbors {
            left: Some(10),
            top: Some(20),
            diag: Some(30),
            back: Some(40),
            ..Default::default()
        };
        let mk = |m| {
            QpEngine::new(QpConfig { mode: m, condition: Condition::CaseI, max_level: 2 })
        };
        assert_eq!(mk(PredMode::Left1).predict(1, &nb), 10);
        assert_eq!(mk(PredMode::Top1).predict(1, &nb), 20);
        assert_eq!(mk(PredMode::Back1).predict(1, &nb), 40);
    }

    #[test]
    fn lorenzo3d_mode_uses_all_seven() {
        let eng = QpEngine::new(QpConfig {
            mode: PredMode::Lorenzo3d,
            condition: Condition::CaseI,
            max_level: 2,
        });
        // Constant neighborhood of 5: 3-D Lorenzo gives 5+5+5−5−5−5+5 = 5.
        assert_eq!(eng.predict(1, &full_neighbors(5)), 5);
        // Any missing corner: no prediction.
        let mut nb = full_neighbors(5);
        nb.diag_back = None;
        assert_eq!(eng.predict(1, &nb), 0);
    }

    #[test]
    fn off_mode_is_identity() {
        let eng = QpEngine::new(QpConfig::off());
        let nb = full_neighbors(9);
        for q in [-5, 0, 5, UNPRED] {
            assert_eq!(eng.transform(q, 1, &nb), q);
        }
    }
}

//! The compressor trait and error type shared across the workspace.

use crate::{CompressCtx, ErrorBound};
use qip_codec::CodecError;
use qip_tensor::{Field, Scalar, TensorError};

/// Errors surfaced by compression or decompression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// Underlying codec failure (truncated/corrupt stream).
    Codec(CodecError),
    /// Underlying tensor failure (shape/buffer mismatch).
    Tensor(TensorError),
    /// The stream was produced by a different compressor or format version.
    WrongFormat(&'static str),
    /// The input violates a precondition of this compressor.
    Unsupported(&'static str),
    /// The stream failed an integrity or consistency check (bit rot,
    /// truncation past the header, or a forged/damaged trailer).
    Corrupt(&'static str),
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::Codec(e) => write!(f, "codec error: {e}"),
            CompressError::Tensor(e) => write!(f, "tensor error: {e}"),
            CompressError::WrongFormat(m) => write!(f, "wrong format: {m}"),
            CompressError::Unsupported(m) => write!(f, "unsupported input: {m}"),
            CompressError::Corrupt(m) => write!(f, "corrupt stream: {m}"),
        }
    }
}

impl std::error::Error for CompressError {}

impl From<CodecError> for CompressError {
    fn from(e: CodecError) -> Self {
        CompressError::Codec(e)
    }
}

impl From<TensorError> for CompressError {
    fn from(e: TensorError) -> Self {
        CompressError::Tensor(e)
    }
}

/// Fallibly allocate a zero-initialised decode buffer of `n` elements.
///
/// Decoders size their output from header fields; even after the integrity
/// trailer passes, a forged-but-consistent stream can declare volumes near the
/// header cap, so the allocation must fail as [`CompressError::Corrupt`]
/// rather than abort the process.
pub fn try_zeroed_vec<T: Clone + Default>(n: usize) -> Result<Vec<T>, CompressError> {
    let mut v = Vec::new();
    v.try_reserve_exact(n)
        .map_err(|_| CompressError::Corrupt("declared size exceeds available memory"))?;
    v.resize(n, T::default());
    Ok(v)
}

/// Fallibly reserve capacity for `n` elements (empty vector, `Corrupt` on
/// allocation failure). Companion to [`try_zeroed_vec`] for buffers filled
/// by `push`.
pub fn try_with_capacity<T>(n: usize) -> Result<Vec<T>, CompressError> {
    let mut v = Vec::new();
    v.try_reserve_exact(n)
        .map_err(|_| CompressError::Corrupt("declared size exceeds available memory"))?;
    Ok(v)
}

/// An error-bounded lossy compressor over fields of `T`.
///
/// Streams are self-describing: `decompress` recovers the shape from the
/// stream header, and the error-bound contract is
/// `|d[i] − decompress(compress(d))[i]| ≤ ε` for the resolved absolute ε.
pub trait Compressor<T: Scalar> {
    /// Short stable name used in experiment reports ("SZ3", "QoZ+QP", …).
    fn name(&self) -> String;

    /// Compress `field` under `bound`.
    fn compress(&self, field: &Field<T>, bound: ErrorBound) -> Result<Vec<u8>, CompressError>;

    /// Decompress a stream produced by [`Compressor::compress`].
    fn decompress(&self, bytes: &[u8]) -> Result<Field<T>, CompressError>;

    /// Compress `field` into `out`, reusing scratch from `ctx`.
    ///
    /// `out` is cleared first; on success it holds a stream **byte-identical**
    /// to what [`Compressor::compress`] returns for the same inputs (pinned by
    /// the workspace equivalence tests). The default implementation delegates
    /// to the allocating path, so every impl keeps compiling; compressors with
    /// a real scratch-reusing path override it.
    fn compress_into(
        &self,
        field: &Field<T>,
        bound: ErrorBound,
        ctx: &mut CompressCtx,
        out: &mut Vec<u8>,
    ) -> Result<(), CompressError> {
        let _ = ctx;
        *out = self.compress(field, bound)?;
        Ok(())
    }

    /// Decompress a stream, reusing scratch from `ctx`.
    ///
    /// Returns exactly what [`Compressor::decompress`] returns for the same
    /// stream. The default delegates to the allocating path.
    fn decompress_into(
        &self,
        bytes: &[u8],
        ctx: &mut CompressCtx,
    ) -> Result<Field<T>, CompressError> {
        let _ = ctx;
        self.decompress(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions() {
        let c: CompressError = CodecError::UnexpectedEof.into();
        assert!(matches!(c, CompressError::Codec(_)));
        let t: CompressError = TensorError::BadBytes("x").into();
        assert!(matches!(t, CompressError::Tensor(_)));
    }

    #[test]
    fn display_messages() {
        let c = CompressError::WrongFormat("not an SZ3 stream");
        assert!(c.to_string().contains("not an SZ3 stream"));
    }
}

//! User-facing error-bound specification.

use qip_tensor::{Field, Scalar};

/// Error bound requested by the user.
///
/// The paper evaluates under *absolute* bounds tied to each field's value
/// range (its "1E-3" settings are value-range-relative, the SZ3 convention),
/// so both forms are provided. Compressors resolve to an absolute bound via
/// [`ErrorBound::absolute`] before quantizing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Absolute bound: `|d − d'| ≤ ε`.
    Abs(f64),
    /// Value-range-relative bound: `|d − d'| ≤ ε · (max(d) − min(d))`.
    Rel(f64),
}

impl ErrorBound {
    /// Resolve to an absolute bound given the field's value range.
    ///
    /// Degenerate cases (constant field under a relative bound, zero/negative
    /// inputs) clamp to a tiny positive bound, which drives every point into
    /// the unpredictable channel — lossless storage, never a bound violation.
    pub fn absolute(&self, value_range: f64) -> f64 {
        let eb = match *self {
            ErrorBound::Abs(e) => e,
            ErrorBound::Rel(e) => e * value_range,
        };
        if eb.is_finite() && eb > 0.0 {
            eb
        } else {
            f64::MIN_POSITIVE
        }
    }

    /// Resolve this bound against a concrete field.
    ///
    /// This is the single entry point every compressor (and wrapper such as
    /// `BlockParallel`) goes through, so `Rel` semantics cannot drift between
    /// a wrapper resolving against the whole field and an inner codec
    /// resolving against a block's narrower value range.
    pub fn resolve<T: Scalar>(&self, field: &Field<T>) -> ResolvedBound {
        let value_range = field.value_range();
        ResolvedBound { abs: self.absolute(value_range), value_range }
    }
}

/// An [`ErrorBound`] resolved against one concrete field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolvedBound {
    /// The absolute tolerance the quantizers enforce (always finite, > 0).
    pub abs: f64,
    /// The value range the bound was resolved against.
    pub value_range: f64,
}

impl ResolvedBound {
    /// The resolved bound as [`ErrorBound::Abs`], for handing to nested
    /// compressors so they quantize at exactly the same tolerance.
    pub fn as_abs(&self) -> ErrorBound {
        ErrorBound::Abs(self.abs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_passthrough() {
        assert_eq!(ErrorBound::Abs(1e-3).absolute(100.0), 1e-3);
    }

    #[test]
    fn rel_scales_by_range() {
        assert_eq!(ErrorBound::Rel(1e-2).absolute(50.0), 0.5);
    }

    #[test]
    fn degenerate_clamps_positive() {
        assert!(ErrorBound::Rel(1e-3).absolute(0.0) > 0.0);
        assert!(ErrorBound::Abs(0.0).absolute(1.0) > 0.0);
        assert!(ErrorBound::Abs(f64::NAN).absolute(1.0) > 0.0);
    }

    #[test]
    fn resolve_matches_absolute_and_keeps_range() {
        let f =
            Field::from_vec(qip_tensor::Shape::new(&[4]), vec![0.0f32, 1.0, 2.0, 4.0]).unwrap();
        let r = ErrorBound::Rel(1e-2).resolve(&f);
        assert_eq!(r.value_range, 4.0);
        assert_eq!(r.abs, 0.04);
        assert_eq!(r.as_abs(), ErrorBound::Abs(r.abs));
        // Resolving the produced Abs bound against any field is idempotent.
        assert_eq!(r.as_abs().resolve(&f).abs, r.abs);
    }
}

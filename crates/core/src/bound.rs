//! User-facing error-bound specification.

/// Error bound requested by the user.
///
/// The paper evaluates under *absolute* bounds tied to each field's value
/// range (its "1E-3" settings are value-range-relative, the SZ3 convention),
/// so both forms are provided. Compressors resolve to an absolute bound via
/// [`ErrorBound::absolute`] before quantizing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Absolute bound: `|d − d'| ≤ ε`.
    Abs(f64),
    /// Value-range-relative bound: `|d − d'| ≤ ε · (max(d) − min(d))`.
    Rel(f64),
}

impl ErrorBound {
    /// Resolve to an absolute bound given the field's value range.
    ///
    /// Degenerate cases (constant field under a relative bound, zero/negative
    /// inputs) clamp to a tiny positive bound, which drives every point into
    /// the unpredictable channel — lossless storage, never a bound violation.
    pub fn absolute(&self, value_range: f64) -> f64 {
        let eb = match *self {
            ErrorBound::Abs(e) => e,
            ErrorBound::Rel(e) => e * value_range,
        };
        if eb.is_finite() && eb > 0.0 {
            eb
        } else {
            f64::MIN_POSITIVE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_passthrough() {
        assert_eq!(ErrorBound::Abs(1e-3).absolute(100.0), 1e-3);
    }

    #[test]
    fn rel_scales_by_range() {
        assert_eq!(ErrorBound::Rel(1e-2).absolute(50.0), 0.5);
    }

    #[test]
    fn degenerate_clamps_positive() {
        assert!(ErrorBound::Rel(1e-3).absolute(0.0) > 0.0);
        assert!(ErrorBound::Abs(0.0).absolute(1.0) > 0.0);
        assert!(ErrorBound::Abs(f64::NAN).absolute(1.0) > 0.0);
    }
}

//! Optional compressor capabilities beyond the whole-field round-trip.
//!
//! [`Compressor`](crate::Compressor) models the lowest common denominator:
//! one field in, one opaque stream out. Some backends can do more — MGARD can
//! reconstruct a coarse approximation without decoding the finer detail
//! levels, and the tiled container can decode just the tiles a region of
//! interest touches. Those extras live here as *capability traits*, so
//! callers discover them by downcast (e.g.
//! `AnyCompressor::as_progressive::<f32>()`) instead of special-casing
//! compressor names.

use crate::CompressError;
use qip_tensor::{Field, Region, Scalar};

/// Coarse-first, refine-later decoding.
///
/// Implementors can reconstruct a reduced-resolution approximation of the
/// original field from a full-fidelity stream, cheaper than a full decode.
pub trait ProgressiveDecompress<T: Scalar> {
    /// Reconstruct only down to hierarchy level `stop_level`, returning the
    /// coarse approximation on the stride-`2^stop_level` lattice (the
    /// decimated field of dims `ceil(d / 2^stop_level)` per axis).
    ///
    /// `stop_level = 0` must reproduce the full-resolution decompression
    /// exactly.
    fn decompress_reduced(
        &self,
        bytes: &[u8],
        stop_level: usize,
    ) -> Result<Field<T>, CompressError>;
}

/// Random-access decoding of a rectangular region of interest.
///
/// Implementors can decode `region` from a stream without reconstructing the
/// whole field — the contract is that the result is **byte-identical** to
/// slicing the full decompression at the same coordinates, while touching
/// only the parts of the stream the region intersects.
pub trait RegionDecompress<T: Scalar> {
    /// Decode exactly `region` (validated against the stream's dims) from
    /// `bytes`. The returned field has shape `region.extent()`.
    fn read_region(&self, bytes: &[u8], region: &Region) -> Result<Field<T>, CompressError>;
}

//! The paper's primary contribution: adaptive **Quantization index Prediction**
//! (QP) for interpolation-based error-bounded lossy compressors, plus the
//! shared compressor abstractions the rest of the workspace builds on.
//!
//! # What QP is
//!
//! Interpolation-based compressors emit a quantization index array `Q` whose
//! entries remain spatially correlated in the plane orthogonal to each
//! interpolation pass (the "clustering effect", paper Sec. IV). QP applies a
//! *reversible* integer prediction `Q'[i] = Q[i] − quant_pred(Q[1..i−1])`
//! inline with the quantization loop, lowering the entropy handed to the
//! Huffman/LZ stage without changing a single decompressed value.
//!
//! The engine in [`qp`] implements the generic Algorithm 1 hook and the
//! best-fit `quant_pred` subroutine of Algorithm 2 — 2-D Lorenzo on the
//! orthogonal plane, Case III gating, levels 1–2 — together with every other
//! configuration the paper explores (prediction dimension, Fig. 7; condition
//! cases, Fig. 8; start level, Fig. 9).
//!
//! # Shared abstractions
//!
//! [`Compressor`], [`ErrorBound`], [`CompressError`] and the self-describing
//! [`header`] are used by every compressor crate (`qip-sz3`, `qip-qoz`,
//! `qip-hpez`, `qip-mgard`, and the transform-based comparators).

#![warn(missing_docs)]

pub mod bound;
pub mod capability;
pub mod compressor;
pub mod ctx;
pub mod header;
pub mod integrity;
pub mod qp;

pub use bound::{ErrorBound, ResolvedBound};
pub use capability::{ProgressiveDecompress, RegionDecompress};
pub use compressor::{try_with_capacity, try_zeroed_vec, CompressError, Compressor};
pub use ctx::CompressCtx;
pub use header::StreamHeader;
pub use qp::{Condition, Neighbors, PredMode, QpConfig, QpEngine};

/// Re-export of the reserved unpredictable-data label.
pub use qip_quant::UNPRED;

//! Stream integrity: a CRC32 trailer sealed onto every compressed stream.
//!
//! Interpolation-based streams are brittle under bit rot: a single flipped
//! bit in an entropy-coded payload usually still parses and silently decodes
//! to garbage. Every outer compressor therefore appends a trailer —
//! `crc32(payload) (4 bytes LE) || 0xC4 0x51` — in [`seal`], and verifies it
//! in [`check`] before any header or payload parsing happens. A mismatch is
//! reported as [`CompressError::Corrupt`] carrying the failed check's name.
//!
//! The CRC is the reflected IEEE polynomial (the one used by zlib, PNG and
//! Ethernet), implemented here directly so the workspace stays free of
//! external dependencies.

use crate::CompressError;

/// Trailer magic: distinguishes "sealed stream with bad CRC" from "stream
/// that never carried a trailer" in error messages.
pub const TRAILER_MAGIC: [u8; 2] = [0xC4, 0x51];

/// Total bytes [`seal`] appends to a stream.
pub const TRAILER_LEN: usize = 6;

/// Reflected IEEE CRC32 (polynomial `0xEDB88320`), init and xor-out `!0`.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = build_table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Append the integrity trailer to a finished stream.
pub fn seal(mut stream: Vec<u8>) -> Vec<u8> {
    seal_in_place(&mut stream);
    stream
}

/// Append the integrity trailer to a stream in place.
///
/// The buffer-reusing `compress_into` paths use this to seal the caller's
/// output vector without an intermediate move through [`seal`].
pub fn seal_in_place(stream: &mut Vec<u8>) {
    let crc = crc32(stream);
    stream.extend_from_slice(&crc.to_le_bytes());
    stream.extend_from_slice(&TRAILER_MAGIC);
}

/// Verify the integrity trailer and return the payload it covers.
///
/// Runs before any parsing, so corrupted streams are rejected up front with
/// [`CompressError::Corrupt`] instead of reaching the decoders.
pub fn check(bytes: &[u8]) -> Result<&[u8], CompressError> {
    if bytes.len() < TRAILER_LEN {
        return Err(CompressError::Corrupt("stream shorter than integrity trailer"));
    }
    let (rest, magic) = bytes.split_at(bytes.len() - TRAILER_MAGIC.len());
    if magic != TRAILER_MAGIC {
        return Err(CompressError::Corrupt("missing integrity trailer"));
    }
    let (payload, crc_bytes) = rest.split_at(rest.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte split"));
    if crc32(payload) != stored {
        return Err(CompressError::Corrupt("CRC32 mismatch"));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for the IEEE CRC32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn seal_then_check_roundtrips() {
        let payload = vec![7u8; 100];
        let sealed = seal(payload.clone());
        assert_eq!(sealed.len(), payload.len() + TRAILER_LEN);
        assert_eq!(check(&sealed).unwrap(), &payload[..]);
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let sealed = seal((0u8..64).collect());
        for byte in 0..sealed.len() {
            for bit in 0..8 {
                let mut bad = sealed.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    check(&bad).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncations_are_caught() {
        let sealed = seal(vec![1, 2, 3, 4, 5]);
        for cut in 0..sealed.len() {
            assert!(check(&sealed[..cut]).is_err(), "truncation to {cut} accepted");
        }
    }

    #[test]
    fn empty_payload_seals() {
        let sealed = seal(Vec::new());
        assert_eq!(check(&sealed).unwrap(), &[] as &[u8]);
    }
}

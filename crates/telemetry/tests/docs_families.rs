//! Docs-vs-exporter cross-check: the canonical metric-name table in
//! `docs/telemetry.md` must agree with the exporter's own family validators.
//!
//! The table documents every serving (`qip_serve_*`) and SLO (`qip_slo_*`)
//! Prometheus family. This test parses those names back out of the markdown
//! and checks, in both directions, that they match the families the code
//! validates (`SERVE_COUNTER_FAMILIES`, `SLO_GAUGE_FAMILIES`, plus the two
//! non-counter serve families `check_serve_families` pins) — and that a
//! fully-populated hub actually renders every documented family in a scrape
//! that passes the strict exposition validator. Editing either side without
//! the other fails here, not in production.

use qip_telemetry::export::{
    check_prometheus_text, check_serve_families, check_slo_families, prometheus_text,
    SERVE_COUNTER_FAMILIES, SLO_GAUGE_FAMILIES,
};
use qip_telemetry::MetricsHub;
use std::collections::BTreeSet;

/// The non-counter serving families `check_serve_families` also pins.
const SERVE_EXTRA_FAMILIES: [&str; 2] = ["qip_serve_queue_depth", "qip_serve_request_ns"];

fn docs_text() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/telemetry.md");
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// Every backticked `qip_…` token in the document with the given prefix.
fn documented_families(doc: &str, prefix: &str) -> BTreeSet<String> {
    let mut found = BTreeSet::new();
    for chunk in doc.split('`').skip(1).step_by(2) {
        if chunk.starts_with(prefix)
            && chunk.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            found.insert(chunk.to_string());
        }
    }
    found
}

fn expected_families() -> BTreeSet<String> {
    SERVE_COUNTER_FAMILIES
        .iter()
        .chain(SERVE_EXTRA_FAMILIES.iter())
        .chain(SLO_GAUGE_FAMILIES.iter())
        .map(|s| s.to_string())
        .collect()
}

#[test]
fn documented_families_match_exporter_validators() {
    let doc = docs_text();
    let mut documented = documented_families(&doc, "qip_serve_");
    documented.extend(documented_families(&doc, "qip_slo_"));
    let expected = expected_families();

    let undocumented: Vec<_> = expected.difference(&documented).collect();
    assert!(
        undocumented.is_empty(),
        "families the exporter validates but docs/telemetry.md never mentions: {undocumented:?}"
    );
    let unknown: Vec<_> = documented.difference(&expected).collect();
    assert!(
        unknown.is_empty(),
        "families documented in docs/telemetry.md that no exporter validator knows: {unknown:?}"
    );
}

#[test]
fn every_documented_family_renders_in_a_populated_scrape() {
    // A hub exercising every serving + SLO family.
    let hub = MetricsHub::with_slo_and_tail(qip_telemetry::slo::default_objectives(), 1.0, 8, 1);
    hub.counter_add("qip.serve.requests", &[("op", "compress"), ("status", "OK")], 3);
    hub.counter_add("qip.serve.shed", &[("op", "compress")], 1);
    hub.counter_add("qip.serve.deadline_miss", &[("op", "decompress")], 1);
    hub.counter_add("qip.serve.panics", &[("op", "compress")], 1);
    hub.gauge_set("qip.serve.queue_depth", &[("worker", "w0")], 2.0);
    hub.observe("qip.serve.request_ns", &[("op", "compress")], 250_000);
    hub.slo.record("compress", false, 250_000);
    hub.slo.record("compress", true, 900_000_000);
    hub.slo.publish(&hub);

    let text = prometheus_text(&hub);
    check_prometheus_text(&text).expect("strict exposition validity");
    check_serve_families(&text).expect("serve family shapes");
    check_slo_families(&text).expect("slo family shapes");

    for family in expected_families() {
        assert!(
            text.lines().any(|l| l.starts_with(&format!("# TYPE {family} "))),
            "documented family {family} missing a # TYPE line in a populated scrape"
        );
    }
}

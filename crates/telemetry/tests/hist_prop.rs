//! Property tests for `qip_telemetry::Histogram`.
//!
//! The crate docs promise two things this file pins across adversarial
//! distributions: (1) `merge` is associative and commutative — per-thread
//! histograms can be combined in any grouping/order with identical results —
//! and (2) quantile estimates carry a bounded relative error of at most
//! `1 / SUB_BUCKETS` (~3.1%) against the exact order statistic, using the
//! same ceil-rank convention `quantile` itself documents.

use proptest::prelude::*;
use qip_telemetry::hist::SUB_BUCKETS;
use qip_telemetry::Histogram;

/// Adversarial value distributions: constant runs, full-width uniform,
/// log-uniform across all magnitudes, bimodal tiny/huge mixtures, and
/// values hugging power-of-two bucket boundaries.
fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    prop_oneof![
        // Constant: every observation identical (degenerate quantiles).
        (any::<u64>(), 1usize..400).prop_map(|(v, n)| vec![v; n]),
        // Full-width uniform.
        proptest::collection::vec(any::<u64>(), 1..400),
        // Log-uniform: magnitude first, then uniform within the decade.
        proptest::collection::vec(
            (1u32..64, any::<u64>()).prop_map(|(e, r)| (1u64 << (e - 1)) + r % (1u64 << (e - 1))),
            1..400
        ),
        // Bimodal: tiny values with huge outliers (tail-latency shape).
        proptest::collection::vec(prop_oneof![0u64..16, (u64::MAX - 1024)..u64::MAX], 1..400),
        // Power-of-two boundary huggers: 2^e - 1, 2^e, 2^e + 1.
        proptest::collection::vec((5u32..63, 0u64..3).prop_map(|(e, d)| (1u64 << e) + d - 1), 1..400),
    ]
}

fn record_all(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

fn assert_same(a: &Histogram, b: &Histogram, what: &str) {
    assert_eq!(a.count(), b.count(), "{what}: count");
    assert_eq!(a.sum(), b.sum(), "{what}: sum");
    assert_eq!(a.max(), b.max(), "{what}: max");
    assert_eq!(a.bucket_counts(), b.bucket_counts(), "{what}: buckets");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn merge_is_associative_commutative_and_matches_direct_recording(
        values in arb_values(),
        seed in any::<u64>(),
    ) {
        // Random 3-way partition of the observations.
        let mut parts: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut state = seed | 1;
        for &v in &values {
            // splitmix64 step for a deterministic per-index partition.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            parts[(z % 3) as usize].push(v);
        }
        let [a, b, c] = parts;
        let (ha, hb, hc) = (record_all(&a), record_all(&b), record_all(&c));
        let direct = record_all(&values);

        // (a ⊕ b) ⊕ c
        let left = Histogram::new();
        left.merge(&ha);
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let bc = Histogram::new();
        bc.merge(&hb);
        bc.merge(&hc);
        let right = Histogram::new();
        right.merge(&ha);
        right.merge(&bc);
        // c ⊕ b ⊕ a
        let reversed = Histogram::new();
        reversed.merge(&hc);
        reversed.merge(&hb);
        reversed.merge(&ha);

        assert_same(&left, &right, "associativity");
        assert_same(&left, &reversed, "commutativity");
        assert_same(&left, &direct, "merge vs direct recording");

        // Merging an empty histogram is the identity.
        left.merge(&Histogram::new());
        assert_same(&left, &direct, "empty-merge identity");
    }

    #[test]
    fn quantile_error_is_bounded_against_exact_order_statistics(values in arb_values()) {
        let h = record_all(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let count = sorted.len() as u64;
        for &q in &[0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let est = h.quantile(q).expect("non-empty histogram");
            if q >= 1.0 {
                prop_assert_eq!(est, *sorted.last().unwrap(), "p100 is exact");
                continue;
            }
            // Same ceil-rank convention as Histogram::quantile.
            let target = ((q * count as f64).ceil() as u64).clamp(1, count);
            let truth = sorted[(target - 1) as usize];
            if truth < SUB_BUCKETS as u64 {
                prop_assert_eq!(est, truth, "linear range is exact (q={})", q);
            } else {
                let err = (est as f64 - truth as f64).abs() / truth as f64;
                prop_assert!(
                    err <= 1.0 / SUB_BUCKETS as f64,
                    "q={} truth={} est={} rel_err={:.5} exceeds 1/{}",
                    q, truth, est, err, SUB_BUCKETS
                );
            }
        }
    }
}

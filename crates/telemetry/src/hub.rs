//! `MetricsHub`: the named-metric registry a process attaches for telemetry.
//!
//! The hub owns three metric families — monotonic counters, gauges, and
//! [`Histogram`]s — keyed by `(name, labels)`, plus the per-call
//! [`FlightRecorder`]. Lookup takes a short mutex on the family's map; the
//! returned handles are `Arc`ed atomics, so instrumentation sites that keep a
//! handle pay no lock at all on the hot path. Convenience one-shot methods
//! (`counter_add`, `gauge_set`, `observe`) do the lookup inline, which is
//! still cheap relative to a compress call (microseconds vs milliseconds).

use crate::hist::{HistSummary, Histogram};
use crate::recorder::FlightRecorder;
use crate::slo::{Objective, SloTracker};
use crate::tail::TailSampler;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identity of one metric series: a name plus ordered `(key, value)` labels.
///
/// Labels are stored raw; escaping for a given wire format happens in the
/// exporter, so the same series renders correctly in both Prometheus text
/// and JSON.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric (family) name, dot-separated by convention (`qip.compress.ns`).
    pub name: String,
    /// Label set, kept sorted by key for a canonical identity.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key; labels are sorted so `[("a","1"),("b","2")]` and
    /// `[("b","2"),("a","1")]` name the same series.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        MetricKey { name: name.to_string(), labels }
    }
}

/// Point-in-time copy of every series in a hub (see [`MetricsHub::snapshot`]).
pub struct Snapshot {
    /// Counter series and their values.
    pub counters: Vec<(MetricKey, u64)>,
    /// Gauge series and their values.
    pub gauges: Vec<(MetricKey, f64)>,
    /// Histogram series and their summaries.
    pub hists: Vec<(MetricKey, HistSummary)>,
}

/// The process-wide metric registry (attach with [`crate::attach`]).
#[derive(Default)]
pub struct MetricsHub {
    counters: Mutex<BTreeMap<MetricKey, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<MetricKey, Arc<AtomicU64>>>, // f64 bit patterns
    hists: Mutex<BTreeMap<MetricKey, Arc<Histogram>>>,
    /// Per-call flight recorder (bounded; see [`FlightRecorder`]).
    pub recorder: FlightRecorder,
    /// Tail-latency sampler: bounded reservoir of per-request trace records
    /// (see [`TailSampler`]).
    pub tail: TailSampler,
    /// SLO burn-rate tracker (defaults to [`crate::slo::default_objectives`]).
    pub slo: SloTracker,
}

impl MetricsHub {
    /// A hub whose flight recorder keeps the default number of records.
    pub fn new() -> MetricsHub {
        MetricsHub::default()
    }

    /// A hub whose flight recorder keeps at most `flight_capacity` records.
    pub fn with_flight_capacity(flight_capacity: usize) -> MetricsHub {
        MetricsHub {
            recorder: FlightRecorder::with_capacity(flight_capacity),
            ..MetricsHub::default()
        }
    }

    /// A hub tracking custom SLO `objectives`, with every burn-rate window
    /// multiplied by `window_scale` (private fields make the struct-update
    /// syntax unavailable outside this crate, hence the constructor).
    pub fn with_slo(objectives: Vec<Objective>, window_scale: f64) -> MetricsHub {
        MetricsHub { slo: SloTracker::new(objectives, window_scale), ..MetricsHub::default() }
    }

    /// A hub combining [`MetricsHub::with_slo`] with a tail sampler of the
    /// given reservoir `capacity` and deterministic `sample_every` period.
    pub fn with_slo_and_tail(
        objectives: Vec<Objective>,
        window_scale: f64,
        capacity: usize,
        sample_every: u64,
    ) -> MetricsHub {
        MetricsHub {
            slo: SloTracker::new(objectives, window_scale),
            tail: TailSampler::with_config(capacity, sample_every),
            ..MetricsHub::default()
        }
    }

    /// Handle to a counter series, created on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<AtomicU64> {
        let key = MetricKey::new(name, labels);
        Arc::clone(self.counters.lock().unwrap().entry(key).or_default())
    }

    /// Add `delta` to a counter series.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        self.counter(name, labels).fetch_add(delta, Ordering::Relaxed);
    }

    /// Set a gauge series to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let key = MetricKey::new(name, labels);
        let cell = Arc::clone(self.gauges.lock().unwrap().entry(key).or_default());
        cell.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Handle to a histogram series, created on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = MetricKey::new(name, labels);
        Arc::clone(
            self.hists.lock().unwrap().entry(key).or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Record one observation into a histogram series.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.histogram(name, labels).record(value);
    }

    /// Fold every series of `other` into `self` (counters add, gauges take
    /// `other`'s value when set, histograms merge). Lets per-worker hubs be
    /// combined for a fleet-level view, mirroring histogram mergeability.
    pub fn merge(&self, other: &MetricsHub) {
        for (key, v) in other.counters.lock().unwrap().iter() {
            let delta = v.load(Ordering::Relaxed);
            if delta != 0 {
                self.counter_add(
                    &key.name,
                    &key.labels
                        .iter()
                        .map(|(k, v)| (k.as_str(), v.as_str()))
                        .collect::<Vec<_>>(),
                    delta,
                );
            }
        }
        for (key, v) in other.gauges.lock().unwrap().iter() {
            let labels: Vec<(&str, &str)> =
                key.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            self.gauge_set(&key.name, &labels, f64::from_bits(v.load(Ordering::Relaxed)));
        }
        for (key, h) in other.hists.lock().unwrap().iter() {
            let labels: Vec<(&str, &str)> =
                key.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            self.histogram(&key.name, &labels).merge(h);
        }
    }

    /// Copy out every series. Metric maps are locked one at a time, so the
    /// snapshot is per-family consistent (adequate for export).
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let hists = self
            .hists
            .lock()
            .unwrap()
            .iter()
            .map(|(k, h)| (k.clone(), h.summary()))
            .collect();
        Snapshot { counters, gauges, hists }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_identity_ignores_label_order() {
        let hub = MetricsHub::new();
        hub.counter_add("c", &[("a", "1"), ("b", "2")], 3);
        hub.counter_add("c", &[("b", "2"), ("a", "1")], 4);
        let snap = hub.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].1, 7);
    }

    #[test]
    fn families_are_independent() {
        let hub = MetricsHub::new();
        hub.counter_add("x", &[], 1);
        hub.gauge_set("x", &[], 2.5);
        hub.observe("x", &[], 9);
        let snap = hub.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.hists.len(), 1);
        assert_eq!(snap.gauges[0].1, 2.5);
        assert_eq!(snap.hists[0].1.count, 1);
    }

    #[test]
    fn merge_folds_all_families() {
        let a = MetricsHub::new();
        let b = MetricsHub::new();
        a.counter_add("c", &[("w", "1")], 5);
        b.counter_add("c", &[("w", "1")], 7);
        b.gauge_set("g", &[], 1.25);
        a.observe("h", &[], 10);
        b.observe("h", &[], 20);
        a.merge(&b);
        let snap = a.snapshot();
        assert_eq!(snap.counters[0].1, 12);
        assert_eq!(snap.gauges[0].1, 1.25);
        assert_eq!(snap.hists[0].1.count, 2);
        assert_eq!(snap.hists[0].1.max, 20);
    }

    #[test]
    fn handles_survive_across_lookups() {
        let hub = MetricsHub::new();
        let h1 = hub.counter("c", &[]);
        let h2 = hub.counter("c", &[]);
        h1.fetch_add(1, Ordering::Relaxed);
        h2.fetch_add(1, Ordering::Relaxed);
        assert_eq!(hub.snapshot().counters[0].1, 2);
    }
}

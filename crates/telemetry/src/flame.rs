//! Flamegraph bridge: collapse a [`TraceReport`] span tree into the
//! folded-stack text format consumed by inferno / flamegraph.pl / speedscope.
//!
//! Each output line is `root;child;grandchild <weight>` where the weight is
//! the node's *self* time in nanoseconds — exactly the semantics flamegraph
//! tools expect (a frame's total width becomes self + descendants). Frames
//! with zero self time are still emitted when they are leaves, so synthesized
//! intermediate nodes never swallow a subtree.

use qip_trace::TraceReport;

/// Frame separator mandated by the folded format; occurrences inside span
/// names are replaced to keep the stack structure parseable.
const SEP: char = ';';

fn clean(name: &str) -> String {
    name.replace(SEP, ",").replace(['\n', '\r'], " ")
}

/// Convert a report's span tree to collapsed-stack ("folded") format.
/// Returns an empty string for an empty report.
pub fn collapsed_stacks(report: &TraceReport) -> String {
    fn walk(node: &qip_trace::SpanNode, prefix: &str, out: &mut String) {
        let path = if prefix.is_empty() {
            clean(&node.name)
        } else {
            format!("{prefix}{SEP}{}", clean(&node.name))
        };
        if node.self_ns > 0 || node.children.is_empty() {
            out.push_str(&format!("{path} {}\n", node.self_ns));
        }
        for c in &node.children {
            walk(c, &path, out);
        }
    }
    let mut out = String::new();
    for n in &report.spans {
        walk(n, "", &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn report() -> TraceReport {
        let mut spans = BTreeMap::new();
        spans.insert("compress[SZ3]".to_string(), (1, 1000));
        spans.insert("compress[SZ3]/quantize".to_string(), (1, 600));
        spans.insert("compress[SZ3]/quantize/encode".to_string(), (2, 100));
        spans.insert("decompress[SZ3]".to_string(), (1, 50));
        TraceReport::from_maps(spans, BTreeMap::new(), BTreeMap::new())
    }

    #[test]
    fn folded_lines_carry_self_time() {
        let folded = collapsed_stacks(&report());
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"compress[SZ3] 400"), "{folded}");
        assert!(lines.contains(&"compress[SZ3];quantize 500"), "{folded}");
        assert!(lines.contains(&"compress[SZ3];quantize;encode 100"), "{folded}");
        assert!(lines.contains(&"decompress[SZ3] 50"), "{folded}");
        // Every line is `stack <integer>`.
        for line in &lines {
            let (stack, weight) = line.rsplit_once(' ').unwrap();
            assert!(!stack.is_empty());
            weight.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn zero_self_leaves_survive_and_separators_are_cleaned() {
        let mut spans = BTreeMap::new();
        // Parent time fully attributed to the child; child name abuses ';'.
        spans.insert("a".to_string(), (1, 100));
        spans.insert("a/b;c".to_string(), (1, 100));
        let r = TraceReport::from_maps(spans, BTreeMap::new(), BTreeMap::new());
        let folded = collapsed_stacks(&r);
        assert!(folded.contains("a;b,c 100"), "{folded}");
        // Parent has zero self and a child: no line of its own.
        assert!(!folded.lines().any(|l| l == "a 0"), "{folded}");
    }

    #[test]
    fn empty_report_folds_to_nothing() {
        assert_eq!(collapsed_stacks(&TraceReport::default()), "");
    }
}

//! Declarative service-level objectives with multi-window burn rates.
//!
//! An [`Objective`] declares what "good" means for an operation — either
//! availability ("99.9% of requests succeed") or latency ("99% of compress
//! calls finish under 250 ms, and errors count against the budget too").
//! The [`SloTracker`] folds every finished request into sliding time windows
//! and computes the standard multi-window **burn rate**:
//!
//! ```text
//! burn_rate(window) = observed_bad_fraction(window) / (1 - target)
//! ```
//!
//! A burn rate of 1.0 spends the error budget exactly at the sustainable
//! pace; 10.0 exhausts a 3-day budget in ~7 hours. Following SRE practice
//! the tracker evaluates fast windows (5m / 1h) that catch sharp regressions
//! and slow windows (6h / 3d) that catch slow leaks. All four window lengths
//! are multiplied by a `window_scale` at construction so tests and the
//! `repro slo` experiment can compress days into seconds without touching
//! the math.
//!
//! Time is measured in nanoseconds since tracker construction. Production
//! callers use [`SloTracker::record`] (wall clock); tests inject synthetic
//! timestamps via [`SloTracker::record_at`] / [`SloTracker::snapshot_at`] so
//! burn-rate math is pinned deterministically.

use std::sync::Mutex;
use std::time::Instant;

/// The four canonical burn-rate windows, longest last: label + base seconds.
const WINDOWS: [(&str, u64); 4] = [("5m", 300), ("1h", 3600), ("6h", 21_600), ("3d", 259_200)];
/// Buckets per ring; bounds memory and sets window-edge granularity (~0.4%).
const RING_BUCKETS: usize = 256;
/// Windows `5m`/`1h` read the fast ring (spanning `1h`), `6h`/`3d` the slow
/// ring (spanning `3d`); this index splits [`WINDOWS`] between them.
const FAST_WINDOWS: usize = 2;

/// What an [`Objective`] promises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObjectiveKind {
    /// `target` fraction of requests must not fail (typed errors, shed,
    /// deadline, internal all count as failures — the caller decides).
    Availability {
        /// Good fraction promised, e.g. `0.999`.
        target: f64,
    },
    /// `target` fraction of requests must finish within `threshold_ns`;
    /// failed requests count against the budget as well.
    Latency {
        /// Latency threshold in nanoseconds.
        threshold_ns: u64,
        /// Good fraction promised, e.g. `0.99`.
        target: f64,
    },
}

impl ObjectiveKind {
    /// The promised good fraction.
    pub fn target(&self) -> f64 {
        match *self {
            ObjectiveKind::Availability { target } => target,
            ObjectiveKind::Latency { target, .. } => target,
        }
    }

    fn is_bad(&self, error: bool, latency_ns: u64) -> bool {
        match *self {
            ObjectiveKind::Availability { .. } => error,
            ObjectiveKind::Latency { threshold_ns, .. } => error || latency_ns > threshold_ns,
        }
    }

    fn kind_label(&self) -> &'static str {
        match self {
            ObjectiveKind::Availability { .. } => "availability",
            ObjectiveKind::Latency { .. } => "latency",
        }
    }
}

/// One declared objective: a name, the op it applies to, and the promise.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Objective name (the `objective` label on exported gauges).
    pub name: String,
    /// Operation label this applies to (`"compress"`, …) or `"*"` for all.
    pub op: String,
    /// The promise itself.
    pub kind: ObjectiveKind,
}

impl Objective {
    /// An availability objective over `op` (`"*"` matches every op).
    pub fn availability(name: &str, op: &str, target: f64) -> Objective {
        Objective {
            name: name.to_string(),
            op: op.to_string(),
            kind: ObjectiveKind::Availability { target },
        }
    }

    /// A latency objective over `op` (`"*"` matches every op).
    pub fn latency(name: &str, op: &str, threshold_ns: u64, target: f64) -> Objective {
        Objective {
            name: name.to_string(),
            op: op.to_string(),
            kind: ObjectiveKind::Latency { threshold_ns, target },
        }
    }

    fn matches(&self, op: &str) -> bool {
        self.op == "*" || self.op == op
    }
}

/// The default serving objectives attached to a fresh hub: 99.9% wildcard
/// availability and 99% of requests under 500 ms.
pub fn default_objectives() -> Vec<Objective> {
    vec![
        Objective::availability("availability", "*", 0.999),
        Objective::latency("latency_500ms", "*", 500_000_000, 0.99),
    ]
}

/// One sliding-window bucket: event totals stamped with their tick.
#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    tick: u64,
    total: u64,
    bad: u64,
}

/// A fixed ring of time buckets; `tick = at_ns / bucket_ns` indexes modulo
/// the ring, and a bucket is lazily reset when a new tick lands on it, so
/// recording is O(1) and stale epochs are excluded by the tick stamp.
#[derive(Debug, Clone)]
struct Ring {
    bucket_ns: u64,
    buckets: Vec<Bucket>,
}

impl Ring {
    fn spanning(span_ns: u64) -> Ring {
        Ring {
            bucket_ns: (span_ns / RING_BUCKETS as u64).max(1),
            buckets: vec![Bucket::default(); RING_BUCKETS],
        }
    }

    fn record(&mut self, at_ns: u64, bad: bool) {
        let tick = at_ns / self.bucket_ns;
        let slot = &mut self.buckets[(tick % RING_BUCKETS as u64) as usize];
        if slot.tick != tick {
            *slot = Bucket { tick, total: 0, bad: 0 };
        }
        slot.total += 1;
        slot.bad += u64::from(bad);
    }

    /// `(total, bad)` over the trailing `window_ns` ending at `now_ns`.
    fn window_totals(&self, now_ns: u64, window_ns: u64) -> (u64, u64) {
        let now_tick = now_ns / self.bucket_ns;
        let window_ticks = (window_ns / self.bucket_ns).max(1);
        let oldest = now_tick.saturating_sub(window_ticks - 1);
        let mut total = 0;
        let mut bad = 0;
        for b in &self.buckets {
            if b.total > 0 && b.tick >= oldest && b.tick <= now_tick {
                total += b.total;
                bad += b.bad;
            }
        }
        (total, bad)
    }
}

/// Burn rate from a windowed bad fraction and the objective's target.
/// Exposed so the bench experiment and tests share one definition.
pub fn burn_rate(total: u64, bad: u64, target: f64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let error_rate = bad as f64 / total as f64;
    error_rate / (1.0 - target).max(1e-9)
}

/// One window's worth of evaluation inside an [`ObjectiveReport`].
#[derive(Debug, Clone, serde::Serialize)]
pub struct WindowReport {
    /// Window label (`"5m"`, `"1h"`, `"6h"`, `"3d"`).
    pub window: String,
    /// Requests observed in the window.
    pub total: u64,
    /// Requests that violated the objective in the window.
    pub bad: u64,
    /// `bad / total` (0 when empty).
    pub error_rate: f64,
    /// `error_rate / (1 - target)` (0 when empty).
    pub burn_rate: f64,
}

/// Point-in-time evaluation of one objective.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ObjectiveReport {
    /// Objective name.
    pub name: String,
    /// Op filter (`"*"` for all).
    pub op: String,
    /// `"availability"` or `"latency"`.
    pub kind: String,
    /// Latency threshold (0 for availability objectives).
    pub threshold_ns: u64,
    /// Promised good fraction.
    pub target: f64,
    /// Lifetime requests matched.
    pub total: u64,
    /// Lifetime violations.
    pub bad: u64,
    /// Good fraction over the longest (3d) window; 1.0 when empty.
    pub compliance: f64,
    /// True when `compliance < target` (with at least one event observed).
    pub breached: bool,
    /// Per-window evaluation, fast to slow.
    pub windows: Vec<WindowReport>,
}

/// Point-in-time evaluation of every objective in a tracker.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SloSnapshot {
    /// Nanoseconds since tracker construction at evaluation time.
    pub at_ns: u64,
    /// The scale applied to all window lengths.
    pub window_scale: f64,
    /// Per-objective reports, in declaration order.
    pub objectives: Vec<ObjectiveReport>,
}

impl SloSnapshot {
    /// Names of objectives currently in breach.
    pub fn breached(&self) -> Vec<String> {
        self.objectives.iter().filter(|o| o.breached).map(|o| o.name.clone()).collect()
    }

    /// Render as a JSON object string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("stub serializer is infallible")
    }
}

struct ObjectiveState {
    obj: Objective,
    total: u64,
    bad: u64,
    /// Spans the scaled `1h`; serves the `5m`/`1h` windows.
    fast: Ring,
    /// Spans the scaled `3d`; serves the `6h`/`3d` windows.
    slow: Ring,
}

struct Inner {
    window_scale: f64,
    objectives: Vec<ObjectiveState>,
}

/// Sliding-window SLO evaluator (see module docs). Thread-safe; recording
/// takes one short mutex, which is noise next to a compress call.
pub struct SloTracker {
    start: Instant,
    inner: Mutex<Inner>,
}

impl Default for SloTracker {
    /// The default serving objectives at production window lengths.
    fn default() -> Self {
        SloTracker::new(default_objectives(), 1.0)
    }
}

impl SloTracker {
    /// A tracker over `objectives`, with every window length multiplied by
    /// `window_scale` (use e.g. `1.0 / 8640.0` to map 3 days onto 30 s).
    pub fn new(objectives: Vec<Objective>, window_scale: f64) -> SloTracker {
        let scale = if window_scale > 0.0 { window_scale } else { 1.0 };
        let scaled = |secs: u64| ((secs as f64 * 1e9 * scale) as u64).max(RING_BUCKETS as u64);
        let fast_span = scaled(WINDOWS[FAST_WINDOWS - 1].1);
        let slow_span = scaled(WINDOWS[WINDOWS.len() - 1].1);
        let objectives = objectives
            .into_iter()
            .map(|obj| ObjectiveState {
                obj,
                total: 0,
                bad: 0,
                fast: Ring::spanning(fast_span),
                slow: Ring::spanning(slow_span),
            })
            .collect();
        SloTracker { start: Instant::now(), inner: Mutex::new(Inner { window_scale: scale, objectives }) }
    }

    /// The declared objectives.
    pub fn objectives(&self) -> Vec<Objective> {
        self.inner.lock().unwrap().objectives.iter().map(|s| s.obj.clone()).collect()
    }

    /// Record a finished request against every matching objective, stamped
    /// with the current wall clock.
    pub fn record(&self, op: &str, error: bool, latency_ns: u64) {
        self.record_at(self.start.elapsed().as_nanos() as u64, op, error, latency_ns);
    }

    /// [`SloTracker::record`] with an injected timestamp (ns since start).
    pub fn record_at(&self, at_ns: u64, op: &str, error: bool, latency_ns: u64) {
        let mut inner = self.inner.lock().unwrap();
        for state in inner.objectives.iter_mut() {
            if !state.obj.matches(op) {
                continue;
            }
            let bad = state.obj.kind.is_bad(error, latency_ns);
            state.total += 1;
            state.bad += u64::from(bad);
            state.fast.record(at_ns, bad);
            state.slow.record(at_ns, bad);
        }
    }

    /// Evaluate every objective now.
    pub fn snapshot(&self) -> SloSnapshot {
        self.snapshot_at(self.start.elapsed().as_nanos() as u64)
    }

    /// [`SloTracker::snapshot`] with an injected timestamp (ns since start).
    pub fn snapshot_at(&self, now_ns: u64) -> SloSnapshot {
        let inner = self.inner.lock().unwrap();
        let scale = inner.window_scale;
        let objectives = inner
            .objectives
            .iter()
            .map(|state| {
                let target = state.obj.kind.target();
                let mut windows = Vec::with_capacity(WINDOWS.len());
                let mut longest = (0u64, 0u64);
                for (i, &(label, secs)) in WINDOWS.iter().enumerate() {
                    let window_ns = ((secs as f64 * 1e9 * scale) as u64).max(1);
                    let ring = if i < FAST_WINDOWS { &state.fast } else { &state.slow };
                    let (total, bad) = ring.window_totals(now_ns, window_ns);
                    longest = (total, bad);
                    windows.push(WindowReport {
                        window: label.to_string(),
                        total,
                        bad,
                        error_rate: if total == 0 { 0.0 } else { bad as f64 / total as f64 },
                        burn_rate: burn_rate(total, bad, target),
                    });
                }
                let (lt, lb) = longest;
                let compliance = if lt == 0 { 1.0 } else { (lt - lb) as f64 / lt as f64 };
                let threshold_ns = match state.obj.kind {
                    ObjectiveKind::Latency { threshold_ns, .. } => threshold_ns,
                    ObjectiveKind::Availability { .. } => 0,
                };
                ObjectiveReport {
                    name: state.obj.name.clone(),
                    op: state.obj.op.clone(),
                    kind: state.obj.kind.kind_label().to_string(),
                    threshold_ns,
                    target,
                    total: state.total,
                    bad: state.bad,
                    compliance,
                    breached: lt > 0 && compliance < target,
                    windows,
                }
            })
            .collect();
        SloSnapshot { at_ns: now_ns, window_scale: scale, objectives }
    }

    /// Export the current evaluation as gauges on `hub`:
    /// `qip.slo.burn_rate{objective,window}`, `qip.slo.compliance{objective}`,
    /// and `qip.slo.objective{objective}` (the target, so dashboards can draw
    /// the line without configuration).
    pub fn publish(&self, hub: &crate::hub::MetricsHub) {
        let snap = self.snapshot();
        for obj in &snap.objectives {
            for w in &obj.windows {
                hub.gauge_set(
                    "qip.slo.burn_rate",
                    &[("objective", obj.name.as_str()), ("window", w.window.as_str())],
                    w.burn_rate,
                );
            }
            hub.gauge_set("qip.slo.compliance", &[("objective", obj.name.as_str())], obj.compliance);
            hub.gauge_set("qip.slo.objective", &[("objective", obj.name.as_str())], obj.target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    fn tracker(objectives: Vec<Objective>) -> SloTracker {
        SloTracker::new(objectives, 1.0)
    }

    #[test]
    fn availability_burn_rate_is_error_rate_over_budget() {
        // target 0.999 → budget 0.1%. 10 errors in 1000 → rate 1% → burn 10.
        let t = tracker(vec![Objective::availability("avail", "*", 0.999)]);
        let now = 3000 * SEC;
        for i in 0..1000u64 {
            t.record_at(now - (i % 100), "compress", i < 10, 1000);
        }
        let snap = t.snapshot_at(now);
        let obj = &snap.objectives[0];
        assert_eq!(obj.total, 1000);
        assert_eq!(obj.bad, 10);
        for w in &obj.windows {
            assert_eq!(w.total, 1000, "window {}", w.window);
            assert_eq!(w.bad, 10);
            assert!((w.error_rate - 0.01).abs() < 1e-12);
            assert!((w.burn_rate - 10.0).abs() < 1e-6, "burn {} in {}", w.burn_rate, w.window);
        }
        assert!((obj.compliance - 0.99).abs() < 1e-12);
        assert!(obj.breached, "1% errors breaches a 99.9% objective");
        assert_eq!(snap.breached(), vec!["avail".to_string()]);
    }

    #[test]
    fn latency_objective_counts_slow_and_failed_requests() {
        // target 0.9, threshold 100ns → budget 10%. 30 slow in 100 → burn 3.
        let t = tracker(vec![Objective::latency("lat", "compress", 100, 0.9)]);
        let now = 500 * SEC;
        for i in 0..100u64 {
            let slow = i < 30;
            t.record_at(now, "compress", false, if slow { 500 } else { 50 });
        }
        // An op the objective doesn't cover must not count.
        t.record_at(now, "ping", false, 10_000);
        let snap = t.snapshot_at(now);
        let obj = &snap.objectives[0];
        assert_eq!(obj.total, 100);
        assert_eq!(obj.bad, 30);
        assert!((obj.windows[0].burn_rate - 3.0).abs() < 1e-6);
        // Errors count against latency budgets too.
        t.record_at(now, "compress", true, 1);
        assert_eq!(t.snapshot_at(now).objectives[0].bad, 31);
    }

    #[test]
    fn fast_window_forgets_old_errors_slow_window_remembers() {
        let t = tracker(vec![Objective::availability("avail", "*", 0.99)]);
        let now = 7200 * SEC; // 2h in, so the 1h fast ring has wrapped cleanly
        // A burst of errors 10 minutes ago: outside 5m, inside 1h/6h/3d.
        for _ in 0..50 {
            t.record_at(now - 600 * SEC, "compress", true, 0);
        }
        // Recent clean traffic.
        for _ in 0..50 {
            t.record_at(now - SEC, "compress", false, 0);
        }
        let snap = t.snapshot_at(now);
        let by_window: Vec<(&str, u64, u64)> = snap.objectives[0]
            .windows
            .iter()
            .map(|w| (w.window.as_str(), w.total, w.bad))
            .collect();
        assert_eq!(by_window[0], ("5m", 50, 0), "burst aged out of the fast window");
        assert_eq!(by_window[1], ("1h", 100, 50));
        assert_eq!(by_window[2], ("6h", 100, 50));
        assert_eq!(by_window[3], ("3d", 100, 50));
        assert_eq!(snap.objectives[0].windows[0].burn_rate, 0.0);
        assert!((snap.objectives[0].windows[1].burn_rate - 50.0).abs() < 1e-6);
    }

    #[test]
    fn window_scale_compresses_time() {
        // Scale 3d down to ~30s: scale = 30 / 259200.
        let scale = 30.0 / 259_200.0;
        let t = SloTracker::new(vec![Objective::availability("avail", "*", 0.9)], scale);
        let now = 60 * SEC;
        // Scaled 5m window is ~35ms; an error 1s ago is outside it but inside
        // the scaled 3d (~30s) window.
        t.record_at(now - SEC, "compress", true, 0);
        t.record_at(now, "compress", false, 0);
        let snap = t.snapshot_at(now);
        let w = &snap.objectives[0].windows;
        assert_eq!((w[0].total, w[0].bad), (1, 0), "5m scaled: only the fresh event");
        assert_eq!((w[3].total, w[3].bad), (2, 1), "3d scaled: both events");
    }

    #[test]
    fn empty_tracker_is_compliant_and_burnless() {
        let t = SloTracker::default();
        let snap = t.snapshot_at(0);
        assert_eq!(snap.objectives.len(), 2);
        for obj in &snap.objectives {
            assert!(!obj.breached);
            assert_eq!(obj.compliance, 1.0);
            assert!(obj.windows.iter().all(|w| w.burn_rate == 0.0));
        }
        assert!(snap.breached().is_empty());
    }

    #[test]
    fn publish_exports_the_gauge_families() {
        let hub = crate::hub::MetricsHub::new();
        let t = tracker(vec![Objective::availability("avail", "*", 0.999)]);
        t.record("compress", false, 100);
        t.publish(&hub);
        let snap = hub.snapshot();
        let names: Vec<&str> = snap.gauges.iter().map(|(k, _)| k.name.as_str()).collect();
        assert!(names.contains(&"qip.slo.burn_rate"));
        assert!(names.contains(&"qip.slo.compliance"));
        assert!(names.contains(&"qip.slo.objective"));
        // Four windows → four burn_rate series for the one objective.
        assert_eq!(names.iter().filter(|n| **n == "qip.slo.burn_rate").count(), 4);
        let target = snap
            .gauges
            .iter()
            .find(|(k, _)| k.name == "qip.slo.objective")
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(target, 0.999);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let t = tracker(vec![Objective::latency("lat", "compress", 100, 0.9)]);
        t.record_at(1000, "compress", false, 500);
        let json = t.snapshot_at(2000).to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"name\":\"lat\""));
        assert!(json.contains("\"kind\":\"latency\""));
        assert!(json.contains("\"window\":\"5m\""));
        assert!(json.contains("\"burn_rate\":"));
    }
}

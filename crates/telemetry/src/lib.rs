//! Always-on production telemetry for the QIP pipeline.
//!
//! `qip-telemetry` is the *production* counterpart to the development-time
//! [`qip-trace`](../qip_trace/index.html) profiler. Where qip-trace is
//! compile-gated (`--features trace`) and collects span trees for a single
//! diagnostic session, this crate is always compiled in and designed to stay
//! attached for the lifetime of a serving process:
//!
//! * [`hist::Histogram`] — lock-free log-linear (HDR-style) latency
//!   histograms with bounded-relative-error p50/p90/p99 and exact max,
//!   mergeable across threads and processes.
//! * [`hub::MetricsHub`] — the named registry of counters, gauges, and
//!   histograms a process attaches via [`attach`].
//! * [`recorder::FlightRecorder`] — a bounded ring of per-call structured
//!   records (compressor, dims, error bound, achieved ratio, per-level QP
//!   accept rates, duration, outcome) dumpable as JSONL for incident triage.
//! * [`export`] — Prometheus text exposition and JSON snapshot renderers.
//! * [`flame`] — converts a qip-trace `TraceReport` into collapsed-stack
//!   (folded) format for flamegraph tooling.
//!
//! # Dormant-cost contract
//!
//! Mirroring qip-trace: when no hub is attached, every instrumentation entry
//! point returns after **one relaxed atomic load** ([`active`]). No
//! formatting, no allocation, no locks. Instrumentation only ever *observes*
//! the pipeline — compressed streams are byte-identical with telemetry on or
//! off (pinned by the `trace_equivalence` integration test).

pub mod export;
pub mod flame;
pub mod hist;
pub mod hub;
pub mod recorder;
pub mod slo;
pub mod tail;

pub use hist::{HistSummary, Histogram};
pub use hub::{MetricKey, MetricsHub, Snapshot};
pub use recorder::{FlightRecord, FlightRecorder, LevelRate};
pub use slo::{Objective, ObjectiveKind, SloSnapshot, SloTracker};
pub use tail::{TailRecord, TailSampler, TailToken};

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Fast dormant check; set strictly after/cleared strictly before `HUB`.
static ATTACHED: AtomicBool = AtomicBool::new(false);
/// The attached hub. A mutex (not a OnceLock) so tests can attach/detach.
static HUB: Mutex<Option<Arc<MetricsHub>>> = Mutex::new(None);

thread_local! {
    /// Nested [`pause`] guards on this thread (trial tuners).
    static PAUSE_DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Open [`CallScope`] on this thread (0 or 1; nested calls don't reopen).
    static CALL_DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Values reported via [`call_value`] inside the open scope.
    static CALL_VALUES: RefCell<Vec<(String, f64)>> = const { RefCell::new(Vec::new()) };
    /// Trace ID of the serving request currently running on this thread
    /// (set via [`TraceTag`]; empty outside request scope).
    static CURRENT_TRACE: RefCell<String> = const { RefCell::new(String::new()) };
}

/// True when a hub is attached and telemetry is not paused on this thread.
/// When dormant this is a single relaxed atomic load (the `&&` never
/// evaluates its right side), which is the entire hot-path cost.
#[inline]
pub fn active() -> bool {
    ATTACHED.load(Ordering::Relaxed) && PAUSE_DEPTH.with(|d| d.get()) == 0
}

/// Attach `hub` as the process-wide metrics sink, replacing any previous one.
pub fn attach(hub: Arc<MetricsHub>) {
    *HUB.lock().unwrap() = Some(hub);
    ATTACHED.store(true, Ordering::SeqCst);
}

/// Detach and return the current hub, if any. Instrumentation goes dormant.
pub fn detach() -> Option<Arc<MetricsHub>> {
    ATTACHED.store(false, Ordering::SeqCst);
    HUB.lock().unwrap().take()
}

/// Run `f` against the attached hub; no-op when dormant.
pub fn with_hub<F: FnOnce(&MetricsHub)>(f: F) {
    if !active() {
        return;
    }
    let guard = HUB.lock().unwrap();
    if let Some(hub) = guard.as_ref() {
        let hub = Arc::clone(hub);
        drop(guard); // don't hold the slot lock while touching metric maps
        f(&hub);
    }
}

/// Suppress telemetry on this thread until the guard drops. Used by trial
/// tuners (QoZ/HPEZ alpha-beta search) so speculative compressions don't
/// pollute production counters, mirroring `qip_trace::pause`.
pub fn pause() -> PauseGuard {
    PAUSE_DEPTH.with(|d| d.set(d.get() + 1));
    PauseGuard { _priv: () }
}

/// RAII guard from [`pause`]; re-enables telemetry for this thread on drop.
pub struct PauseGuard {
    _priv: (),
}

impl Drop for PauseGuard {
    fn drop(&mut self) {
        PAUSE_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Tag this thread with the trace ID of the request it is serving until the
/// guard drops. While tagged, flight records pushed from this thread carry
/// the ID, tying per-call records to wire-level traces. Works even when
/// telemetry is dormant (the tag is thread-local and costs one refcell swap),
/// so a hub attached mid-request still sees the ID.
pub fn trace_tag(trace_id: &str) -> TraceTag {
    let previous = CURRENT_TRACE.with(|t| std::mem::replace(&mut *t.borrow_mut(), trace_id.to_string()));
    TraceTag { previous }
}

/// The trace ID tagged on this thread via [`trace_tag`] (`""` when none).
pub fn current_trace() -> String {
    CURRENT_TRACE.with(|t| t.borrow().clone())
}

/// RAII guard from [`trace_tag`]; restores the previous tag on drop so
/// nested scopes (inline retries, recursive dispatch) compose.
pub struct TraceTag {
    previous: String,
}

impl Drop for TraceTag {
    fn drop(&mut self) {
        let previous = std::mem::take(&mut self.previous);
        CURRENT_TRACE.with(|t| *t.borrow_mut() = previous);
    }
}

/// Begin tail-sampling a request on the attached hub. Returns `None` when
/// dormant; hand the token to [`tail_finish`] when the request completes.
pub fn tail_begin() -> Option<TailToken> {
    let mut token = None;
    with_hub(|hub| token = Some(hub.tail.begin()));
    token
}

/// Finish a tail-sampled request (no-op for a `None` token or when the hub
/// was detached mid-request).
pub fn tail_finish(
    token: Option<TailToken>,
    trace_id: &str,
    op: &str,
    status: &str,
    duration_ns: u64,
    queue_wait_ns: u64,
) {
    let Some(token) = token else { return };
    with_hub(|hub| hub.tail.finish(token, trace_id, op, status, duration_ns, queue_wait_ns));
}

/// The attached hub's tail-sampler reservoir as JSONL, if a hub is attached.
pub fn tails_jsonl() -> Option<String> {
    let mut out = None;
    with_hub(|hub| out = Some(hub.tail.dump_jsonl()));
    out
}

/// Record a finished request against the attached hub's SLO objectives;
/// no-op when dormant.
pub fn slo_observe(op: &str, error: bool, latency_ns: u64) {
    with_hub(|hub| hub.slo.record(op, error, latency_ns));
}

/// Re-export the attached hub's current SLO evaluation as gauges (see
/// [`SloTracker::publish`]); no-op when dormant. Call periodically (the
/// serve stats loop does) so scrapes see fresh burn rates.
pub fn slo_publish() {
    with_hub(|hub| hub.slo.publish(hub));
}

/// Add `delta` to a counter series on the attached hub; no-op when dormant.
#[inline]
pub fn counter_add(name: &str, labels: &[(&str, &str)], delta: u64) {
    if !active() {
        return;
    }
    with_hub(|hub| hub.counter_add(name, labels, delta));
}

/// Set a gauge series on the attached hub; no-op when dormant.
#[inline]
pub fn gauge_set(name: &str, labels: &[(&str, &str)], value: f64) {
    if !active() {
        return;
    }
    with_hub(|hub| hub.gauge_set(name, labels, value));
}

/// Record a histogram observation on the attached hub; no-op when dormant.
#[inline]
pub fn observe(name: &str, labels: &[(&str, &str)], value: u64) {
    if !active() {
        return;
    }
    with_hub(|hub| hub.observe(name, labels, value));
}

/// Report a named value from inside an instrumented call (e.g. the engine's
/// per-level `qp.accept_rate.l3`). Last write per name wins, so trial runs
/// that precede the real compression within one call are overwritten by it.
/// No-op when dormant or when no [`CallScope`] is open on this thread.
pub fn call_value(name: &str, value: f64) {
    if !active() || CALL_DEPTH.with(|d| d.get()) == 0 {
        return;
    }
    CALL_VALUES.with(|vals| {
        let mut vals = vals.borrow_mut();
        match vals.iter_mut().find(|(n, _)| n == name) {
            Some(entry) => entry.1 = value,
            None => vals.push((name.to_string(), value)),
        }
    });
}

/// Open per-call collection scope (see [`CallScope::begin`]).
pub struct CallScope {
    _priv: (),
}

impl CallScope {
    /// Open a scope on this thread. Returns `None` when telemetry is dormant
    /// or a scope is already open (nested compressor calls report into the
    /// outermost one), so each top-level call yields exactly one record.
    pub fn begin() -> Option<CallScope> {
        if !active() || CALL_DEPTH.with(|d| d.get()) != 0 {
            return None;
        }
        CALL_DEPTH.with(|d| d.set(1));
        CALL_VALUES.with(|v| v.borrow_mut().clear());
        Some(CallScope { _priv: () })
    }

    /// Close the scope and drain the values reported inside it.
    pub fn finish(self) -> Vec<(String, f64)> {
        CALL_VALUES.with(|v| std::mem::take(&mut *v.borrow_mut()))
        // Drop impl resets the depth.
    }
}

impl Drop for CallScope {
    fn drop(&mut self) {
        CALL_DEPTH.with(|d| d.set(0));
    }
}

/// Everything an instrumented entry point knows about one finished call.
pub struct CallReport<'a> {
    /// `"compress"` or `"decompress"`.
    pub op: &'a str,
    /// Registry compressor name (`"SZ3+QP"`, …).
    pub compressor: &'a str,
    /// Field dimensions.
    pub dims: &'a [usize],
    /// Scalar type name (`"f32"` / `"f64"`).
    pub dtype: &'a str,
    /// Requested absolute error bound.
    pub error_bound: f64,
    /// Uncompressed payload size in bytes.
    pub raw_bytes: u64,
    /// Compressed stream size in bytes (0 when the call failed).
    pub stream_bytes: u64,
    /// Wall time of the call in nanoseconds.
    pub duration_ns: u64,
    /// Low-cardinality outcome class for counter labels: `"ok"`,
    /// `"corrupt"`, or `"error"`.
    pub outcome_kind: &'a str,
    /// Full outcome text for the flight record (`"ok"` or error rendering).
    pub outcome: String,
    /// Active pipeline-kernel mode (`"chunked"` / `"scalar"`); `""` when the
    /// caller has no kernel dimension (e.g. fault records).
    pub kernel_mode: &'a str,
}

/// Record one finished call: updates the hub's histograms/counters and
/// appends a flight record, harvesting per-level QP accept rates from the
/// scope's [`call_value`]s. The scope comes from [`CallScope::begin`] at the
/// start of the call; pass `None` if none was opened (then only a detached
/// record would be meaningless, so this is a no-op when dormant).
pub fn record_call(scope: Option<CallScope>, report: CallReport<'_>) {
    let Some(scope) = scope else { return };
    let values = scope.finish();
    if !active() {
        return; // hub detached mid-call
    }
    let comp = report.compressor;
    let labels = [("compressor", comp)];
    let cr = if report.stream_bytes > 0 {
        report.raw_bytes as f64 / report.stream_bytes as f64
    } else {
        0.0
    };
    let n_values: u64 = report.dims.iter().map(|&d| d as u64).product();
    let bitrate = if report.stream_bytes > 0 && n_values > 0 {
        report.stream_bytes as f64 * 8.0 / n_values as f64
    } else {
        0.0
    };

    let mut qp_accept_rates = Vec::new();
    with_hub(|hub| {
        hub.observe(&format!("qip.{}.duration_ns", report.op), &labels, report.duration_ns);
        hub.counter_add(
            &format!("qip.{}.calls", report.op),
            &[("compressor", comp), ("outcome", report.outcome_kind)],
            1,
        );
        hub.counter_add(&format!("qip.{}.bytes.raw", report.op), &labels, report.raw_bytes);
        hub.counter_add(&format!("qip.{}.bytes.stream", report.op), &labels, report.stream_bytes);
        if cr > 0.0 {
            // CR as a fixed-point histogram (x100) so quantiles are exportable.
            hub.observe(&format!("qip.{}.cr_x100", report.op), &labels, (cr * 100.0) as u64);
        }
        for (name, value) in &values {
            if let Some(level) = name.strip_prefix("qp.accept_rate.l").and_then(|s| s.parse().ok())
            {
                qp_accept_rates.push(LevelRate { level, rate: *value });
                hub.gauge_set(
                    "qip.qp.accept_rate",
                    &[("compressor", comp), ("level", &format!("l{level}"))],
                    *value,
                );
            } else {
                hub.gauge_set(&format!("qip.call.{name}"), &labels, *value);
            }
        }
        qp_accept_rates.sort_by_key(|r| r.level);
        hub.recorder.push(FlightRecord {
            seq: 0,
            trace_id: current_trace(),
            op: report.op.to_string(),
            compressor: comp.to_string(),
            dims: report.dims.iter().map(|&d| d as u64).collect(),
            dtype: report.dtype.to_string(),
            error_bound: report.error_bound,
            raw_bytes: report.raw_bytes,
            stream_bytes: report.stream_bytes,
            cr,
            bitrate_bits_per_value: bitrate,
            duration_ns: report.duration_ns,
            outcome: report.outcome.clone(),
            qp_accept_rates: std::mem::take(&mut qp_accept_rates),
            kernel_mode: report.kernel_mode.to_string(),
        });
    });
}

/// Append a failure-only flight record (no metrics side effects beyond an
/// error counter). Used by the fault-injection harness to log decode
/// rejections it observes outside the registry entry points.
pub fn record_fault(compressor: &str, op: &str, outcome: &str) {
    if !active() {
        return;
    }
    with_hub(|hub| {
        hub.counter_add("qip.fault.records", &[("compressor", compressor), ("op", op)], 1);
        hub.recorder.push(FlightRecord {
            seq: 0,
            trace_id: current_trace(),
            op: op.to_string(),
            compressor: compressor.to_string(),
            dims: Vec::new(),
            dtype: String::new(),
            error_bound: 0.0,
            raw_bytes: 0,
            stream_bytes: 0,
            cr: 0.0,
            bitrate_bits_per_value: 0.0,
            duration_ns: 0,
            outcome: outcome.to_string(),
            qp_accept_rates: Vec::new(),
            kernel_mode: String::new(),
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // The attach/detach slot is process-global, so tests touching it share
    // one lock to stay independent of test-thread interleaving.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn dormant_functions_are_noops() {
        let _t = TEST_LOCK.lock().unwrap();
        detach();
        assert!(!active());
        counter_add("c", &[], 1);
        gauge_set("g", &[], 1.0);
        observe("h", &[], 1);
        call_value("v", 1.0);
        assert!(CallScope::begin().is_none());
        record_fault("X", "decompress", "corrupt");
    }

    #[test]
    fn attach_records_detach_stops() {
        let _t = TEST_LOCK.lock().unwrap();
        let hub = Arc::new(MetricsHub::new());
        attach(Arc::clone(&hub));
        assert!(active());
        counter_add("c", &[], 2);
        observe("h", &[], 7);
        let detached = detach().unwrap();
        assert!(Arc::ptr_eq(&detached, &hub));
        counter_add("c", &[], 100); // dormant: must not land
        let snap = hub.snapshot();
        assert_eq!(snap.counters[0].1, 2);
        assert_eq!(snap.hists[0].1.count, 1);
    }

    #[test]
    fn pause_suppresses_on_this_thread() {
        let _t = TEST_LOCK.lock().unwrap();
        let hub = Arc::new(MetricsHub::new());
        attach(Arc::clone(&hub));
        {
            let _p = pause();
            assert!(!active());
            counter_add("c", &[], 1);
            let _p2 = pause(); // nesting
        }
        assert!(active());
        counter_add("c", &[], 1);
        detach();
        assert_eq!(hub.snapshot().counters[0].1, 1);
    }

    #[test]
    fn call_scope_collects_last_write_wins_and_feeds_record() {
        let _t = TEST_LOCK.lock().unwrap();
        let hub = Arc::new(MetricsHub::new());
        attach(Arc::clone(&hub));
        let scope = CallScope::begin();
        assert!(scope.is_some());
        assert!(CallScope::begin().is_none()); // no nested scopes
        call_value("qp.accept_rate.l2", 0.5); // trial run…
        call_value("qp.accept_rate.l2", 0.9); // …overwritten by the real one
        call_value("qp.accept_rate.l1", 0.8);
        record_call(
            scope,
            CallReport {
                op: "compress",
                compressor: "SZ3+QP",
                dims: &[16, 16, 16],
                dtype: "f32",
                error_bound: 1e-3,
                raw_bytes: 16384,
                stream_bytes: 4096,
                duration_ns: 1000,
                outcome_kind: "ok",
                outcome: "ok".into(),
                kernel_mode: "chunked",
            },
        );
        detach();
        let records = hub.recorder.records();
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.cr, 4.0);
        assert_eq!(r.bitrate_bits_per_value, 8.0);
        assert_eq!(r.kernel_mode, "chunked");
        assert_eq!(
            r.qp_accept_rates,
            vec![LevelRate { level: 1, rate: 0.8 }, LevelRate { level: 2, rate: 0.9 }]
        );
        let snap = hub.snapshot();
        let names: Vec<&str> = snap.hists.iter().map(|(k, _)| k.name.as_str()).collect();
        assert!(names.contains(&"qip.compress.duration_ns"));
        assert!(names.contains(&"qip.compress.cr_x100"));
        assert!(snap
            .gauges
            .iter()
            .any(|(k, v)| k.name == "qip.qp.accept_rate"
                && k.labels.contains(&("level".into(), "l2".into()))
                && *v == 0.9));
        // A fresh scope starts clean.
        let scope = CallScope::begin();
        assert!(scope.is_none()); // dormant after detach
    }

    #[test]
    fn trace_tag_stamps_flight_records_and_restores_on_drop() {
        let _t = TEST_LOCK.lock().unwrap();
        let hub = Arc::new(MetricsHub::new());
        attach(Arc::clone(&hub));
        let id = "ab".repeat(16);
        {
            let _tag = trace_tag(&id);
            assert_eq!(current_trace(), id);
            {
                let _nested = trace_tag("cd00");
                assert_eq!(current_trace(), "cd00");
            }
            assert_eq!(current_trace(), id, "nested tag restores the outer one");
            record_fault("SZ3", "decompress", "corrupt: tagged");
        }
        assert_eq!(current_trace(), "");
        record_fault("SZ3", "decompress", "corrupt: untagged");
        detach();
        let recs = hub.recorder.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].trace_id, id);
        assert_eq!(recs[1].trace_id, "");
    }

    #[test]
    fn tail_and_slo_helpers_are_dormant_noops_and_live_passthroughs() {
        let _t = TEST_LOCK.lock().unwrap();
        detach();
        assert!(tail_begin().is_none());
        tail_finish(None, "", "compress", "OK", 1, 0);
        assert!(tails_jsonl().is_none());
        slo_observe("compress", true, 1);
        slo_publish();

        let hub = Arc::new(MetricsHub::with_slo_and_tail(
            vec![crate::slo::Objective::availability("avail", "*", 0.9)],
            1.0,
            8,
            1,
        ));
        attach(Arc::clone(&hub));
        let token = tail_begin();
        assert!(token.is_some());
        tail_finish(token, &"ef".repeat(16), "compress", "OK", 5_000, 100);
        slo_observe("compress", false, 5_000);
        slo_publish();
        let tails = tails_jsonl().unwrap();
        detach();
        assert!(tails.contains(&"ef".repeat(16)));
        assert_eq!(hub.tail.len(), 1);
        assert_eq!(hub.slo.snapshot().objectives[0].total, 1);
        let names: Vec<String> =
            hub.snapshot().gauges.iter().map(|(k, _)| k.name.clone()).collect();
        assert!(names.iter().any(|n| n == "qip.slo.burn_rate"));
    }

    #[test]
    fn fault_records_land_in_recorder() {
        let _t = TEST_LOCK.lock().unwrap();
        let hub = Arc::new(MetricsHub::new());
        attach(Arc::clone(&hub));
        record_fault("MGARD", "decompress", "corrupt: bad magic");
        detach();
        let recs = hub.recorder.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].outcome, "corrupt: bad magic");
        assert_eq!(hub.snapshot().counters[0].1, 1);
    }
}

//! Lock-free log-linear histogram (HDR-style) over `u64` observations.
//!
//! The value range is covered by buckets whose width grows with magnitude:
//! values below [`SUB_BUCKETS`] get an exact bucket each, larger values share
//! [`SUB_BUCKETS`] buckets per power of two. Quantile estimates therefore
//! carry a bounded *relative* error of at most `1 / SUB_BUCKETS` (~3.1%),
//! independent of the value range — the usual latency-histogram trade.
//!
//! Everything is atomic: `record` is wait-free (one `fetch_add` plus a
//! `fetch_max`), concurrent recorders never lose counts, and [`Histogram::merge`]
//! is associative and commutative, so per-thread histograms can be combined
//! in any order with an identical result (pinned by the tests below).

use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets per power of two; also the linear-range size. Power of two.
pub const SUB_BUCKETS: usize = 32;
/// log2(SUB_BUCKETS).
const SUB_SHIFT: u32 = SUB_BUCKETS.trailing_zeros();
/// Total bucket count: the linear range plus SUB_BUCKETS per exponent from
/// SUB_SHIFT to 63 inclusive.
const N_BUCKETS: usize = SUB_BUCKETS * (64 - SUB_SHIFT as usize + 1);

/// Bucket index for a value (total order, contiguous from 0).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_SHIFT
    let sub = (v >> (exp - SUB_SHIFT)) as usize - SUB_BUCKETS;
    (exp - SUB_SHIFT + 1) as usize * SUB_BUCKETS + sub
}

/// Midpoint of the bucket's value range (the quantile estimate we report).
fn bucket_mid(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let exp = (index / SUB_BUCKETS) as u32 - 1 + SUB_SHIFT;
    let sub = (index % SUB_BUCKETS) as u64;
    let low = (SUB_BUCKETS as u64 + sub) << (exp - SUB_SHIFT);
    let width = 1u64 << (exp - SUB_SHIFT);
    low + width / 2
}

/// A mergeable, thread-safe log-linear histogram.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("max", &self.max())
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        let buckets: Vec<AtomicU64> = (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation. Wait-free; safe from any thread.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded observations (exact, not bucketed).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded observation (exact, not bucketed). 0 when empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`). Returns the midpoint of the
    /// bucket containing the target rank — relative error is bounded by
    /// `1/SUB_BUCKETS`. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        if q >= 1.0 {
            return Some(self.max()); // p100 is tracked exactly
        }
        // Rank of the target observation, 1-based, clamped into range.
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                // Never report beyond the exact max.
                return Some(bucket_mid(i).min(self.max()));
            }
        }
        Some(self.max())
    }

    /// Add every bucket of `other` into `self`. Associative and commutative:
    /// any merge tree over the same set of histograms yields identical state.
    pub fn merge(&self, other: &Histogram) {
        for (a, b) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = b.load(Ordering::Relaxed);
            if v != 0 {
                a.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// The fixed summary exported everywhere: count, sum, p50/p90/p99, max.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50).unwrap_or(0),
            p90: self.quantile(0.90).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
            max: self.max(),
        }
    }

    /// Raw bucket counts (test/diagnostic use).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }
}

/// Snapshot of a histogram's exported statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Exact sum of observations.
    pub sum: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_contiguous() {
        let mut last = 0usize;
        for v in 0..4096u64 {
            let i = bucket_index(v);
            assert!(i == last || i == last + 1, "v={v}: index {i} after {last}");
            last = i;
        }
        // Extremes map inside the table.
        assert!(bucket_index(u64::MAX) < N_BUCKETS);
        assert_eq!(bucket_index(0), 0);
    }

    #[test]
    fn bucket_mid_lies_in_its_own_bucket() {
        for v in [0u64, 1, 31, 32, 33, 1000, 123_456, u64::MAX / 3] {
            let i = bucket_index(v);
            assert_eq!(bucket_index(bucket_mid(i)), i, "v={v}");
        }
    }

    #[test]
    fn exact_below_linear_range() {
        let h = Histogram::new();
        for v in [0u64, 5, 5, 17, 31] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 58);
        assert_eq!(h.max(), 31);
        // Values < SUB_BUCKETS are exact.
        assert_eq!(h.quantile(0.5), Some(5));
        assert_eq!(h.quantile(1.0), Some(31));
    }

    /// Uniform distribution: every quantile estimate must sit within the
    /// log-linear relative error bound of the true quantile.
    #[test]
    fn quantile_accuracy_uniform() {
        let h = Histogram::new();
        let n = 100_000u64;
        for v in 1..=n {
            h.record(v);
        }
        for (q, truth) in [(0.50, 50_000.0), (0.90, 90_000.0), (0.99, 99_000.0)] {
            let est = h.quantile(q).unwrap() as f64;
            let rel = (est - truth).abs() / truth;
            let bound = 1.0 / SUB_BUCKETS as f64 + 1e-9;
            assert!(rel <= bound, "q={q}: est {est} vs {truth} (rel {rel:.4} > {bound:.4})");
        }
        assert_eq!(h.max(), n);
        assert_eq!(h.quantile(1.0), Some(n));
    }

    /// Exponentially spread observations (the latency shape): the estimate
    /// must stay within the relative bound across decades.
    #[test]
    fn quantile_accuracy_exponential_decades() {
        let h = Histogram::new();
        // 10 observations per decade over 1e0..1e8.
        let mut values = Vec::new();
        for exp in 0..8 {
            for k in 1..=10u64 {
                let v = 10u64.pow(exp) * k;
                values.push(v);
                h.record(v);
            }
        }
        values.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let truth = values[((q * values.len() as f64).ceil() as usize - 1).min(values.len() - 1)] as f64;
            let est = h.quantile(q).unwrap() as f64;
            let rel = (est - truth).abs() / truth;
            assert!(rel <= 1.0 / SUB_BUCKETS as f64 + 1e-9, "q={q}: {est} vs {truth}");
        }
    }

    #[test]
    fn merge_is_associative_across_threads() {
        // 8 threads record disjoint ranges into their own histograms; merging
        // in two different orders (and shapes) must agree bucket-for-bucket.
        let parts: Vec<Histogram> = (0..8)
            .map(|t| {
                let h = Histogram::new();
                std::thread::scope(|s| {
                    s.spawn(|| {
                        for v in 0..5_000u64 {
                            h.record(v * 17 + t * 1_000_003);
                        }
                    });
                });
                h
            })
            .collect();

        // Left fold.
        let a = Histogram::new();
        for p in &parts {
            a.merge(p);
        }
        // Pairwise tree, reversed order.
        let b = Histogram::new();
        let pairs: Vec<Histogram> = parts
            .chunks(2)
            .rev()
            .map(|c| {
                let m = Histogram::new();
                for p in c.iter().rev() {
                    m.merge(p);
                }
                m
            })
            .collect();
        for m in &pairs {
            b.merge(m);
        }

        assert_eq!(a.count(), b.count());
        assert_eq!(a.sum(), b.sum());
        assert_eq!(a.max(), b.max());
        assert_eq!(a.bucket_counts(), b.bucket_counts());
        assert_eq!(a.summary(), b.summary());
    }

    #[test]
    fn concurrent_records_never_lose_counts() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let h = &h;
                s.spawn(move || {
                    for v in 0..10_000u64 {
                        h.record(v + t);
                    }
                });
            }
        });
        assert_eq!(h.count(), 80_000);
    }

    #[test]
    fn empty_histogram_summary() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0);
    }
}

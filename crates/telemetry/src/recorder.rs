//! Flight recorder: a bounded ring buffer of per-call structured records.
//!
//! Every compress/decompress call through an instrumented entry point appends
//! one [`FlightRecord`] — enough context to triage a production incident
//! post-hoc (which compressor, what shape, what bound, what came out, how
//! long it took, and whether it failed). The buffer is bounded: once full,
//! the oldest record is dropped, so memory stays constant under any traffic.
//! `seq` is monotonically increasing across the process, so dropped records
//! are detectable as gaps.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default ring capacity (records kept before the oldest is evicted).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// Per-level QP acceptance rate harvested from the engine's `SinkStats`.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct LevelRate {
    /// Interpolation level the rate belongs to.
    pub level: u32,
    /// Fraction of points whose predicted quantization index was accepted.
    pub rate: f64,
}

/// One structured record per compress/decompress call.
#[derive(Debug, Clone, serde::Serialize)]
pub struct FlightRecord {
    /// Monotonic sequence number (process-wide; gaps mean evicted records).
    pub seq: u64,
    /// Trace ID of the serving request this call ran under (32 lower-hex
    /// chars), or `""` for calls outside any request scope. Set from
    /// [`crate::current_trace`] by the instrumentation entry points.
    pub trace_id: String,
    /// `"compress"` or `"decompress"` (`_into` variants share the name).
    pub op: String,
    /// Compressor name as reported by the registry (`"SZ3+QP"`, …).
    pub compressor: String,
    /// Field dimensions.
    pub dims: Vec<u64>,
    /// Scalar type (`"f32"` / `"f64"`).
    pub dtype: String,
    /// Requested error bound (absolute, as passed to the call).
    pub error_bound: f64,
    /// Uncompressed payload size in bytes.
    pub raw_bytes: u64,
    /// Compressed stream size in bytes (0 when the call failed).
    pub stream_bytes: u64,
    /// Achieved compression ratio `raw_bytes / stream_bytes` (0 on failure).
    pub cr: f64,
    /// Achieved bitrate in bits per value (0 on failure).
    pub bitrate_bits_per_value: f64,
    /// Wall time of the call in nanoseconds.
    pub duration_ns: u64,
    /// `"ok"` or the error rendering (e.g. `"corrupt: truncated header"`).
    pub outcome: String,
    /// Per-level QP accept rates observed during the call (compress only;
    /// empty for compressors without QP gating).
    pub qp_accept_rates: Vec<LevelRate>,
    /// Pipeline-kernel mode active during the call (`"chunked"` /
    /// `"scalar"`); `""` for records without a kernel dimension.
    pub kernel_mode: String,
}

/// Bounded, thread-safe ring buffer of [`FlightRecord`]s.
pub struct FlightRecorder {
    capacity: usize,
    seq: AtomicU64,
    ring: Mutex<VecDeque<FlightRecord>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` records (min 1).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Append a record, evicting the oldest when full. The recorder assigns
    /// `seq`; the caller's value is overwritten.
    pub fn push(&self, mut record: FlightRecord) {
        record.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Total records ever pushed (including evicted ones).
    pub fn total_pushed(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out the current contents, oldest first.
    pub fn records(&self) -> Vec<FlightRecord> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Render the current contents as JSON Lines (one record per line,
    /// oldest first, trailing newline when non-empty).
    pub fn dump_jsonl(&self) -> String {
        use serde::Serialize;
        let mut out = String::new();
        for r in self.ring.lock().unwrap().iter() {
            r.write_json(&mut out);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(compressor: &str) -> FlightRecord {
        FlightRecord {
            seq: 0,
            trace_id: "00112233445566778899aabbccddeeff".into(),
            op: "compress".into(),
            compressor: compressor.into(),
            dims: vec![8, 8, 8],
            dtype: "f32".into(),
            error_bound: 1e-3,
            raw_bytes: 2048,
            stream_bytes: 512,
            cr: 4.0,
            bitrate_bits_per_value: 8.0,
            duration_ns: 12_345,
            outcome: "ok".into(),
            qp_accept_rates: vec![LevelRate { level: 1, rate: 0.75 }],
            kernel_mode: "chunked".into(),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_seq() {
        let r = FlightRecorder::with_capacity(3);
        for i in 0..5 {
            r.push(rec(&format!("c{i}")));
        }
        assert_eq!(r.total_pushed(), 5);
        let held = r.records();
        assert_eq!(held.len(), 3);
        // Oldest two evicted; seq shows the gap.
        assert_eq!(held[0].seq, 2);
        assert_eq!(held[2].seq, 4);
        assert_eq!(held[0].compressor, "c2");
    }

    #[test]
    fn jsonl_one_line_per_record() {
        let r = FlightRecorder::with_capacity(8);
        r.push(rec("SZ3"));
        r.push(rec("SZ3+QP"));
        let dump = r.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[1].contains("\"compressor\":\"SZ3+QP\""));
        assert!(lines[0].contains("\"dims\":[8,8,8]"));
        assert!(lines[0].contains("\"qp_accept_rates\":[{\"level\":1,\"rate\":0.75}]"));
        assert!(lines[0].contains("\"trace_id\":\"00112233445566778899aabbccddeeff\""));
    }

    #[test]
    fn concurrent_pushes_assign_unique_seq() {
        let r = FlightRecorder::with_capacity(1024);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        r.push(rec("x"));
                    }
                });
            }
        });
        assert_eq!(r.total_pushed(), 800);
        let mut seqs: Vec<u64> = r.records().iter().map(|x| x.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 800);
    }
}

//! Exporters: Prometheus text exposition format and a JSON snapshot.
//!
//! Both render a [`Snapshot`], so a hub can be exported repeatedly and
//! concurrently with ongoing recording. Histograms are exposed as Prometheus
//! *summary* families (pre-computed quantiles travel with the series, which
//! is what the log-linear histogram gives us without shipping raw buckets);
//! the exact maximum rides along as a companion `<name>_max` gauge.
//!
//! [`check_prometheus_text`] is a small strict validator for the exposition
//! format — used by the unit tests and CI to pin that what we emit actually
//! parses, not just that it looks plausible.

use crate::hist::HistSummary;
use crate::hub::{MetricKey, MetricsHub, Snapshot};

/// Map an internal dot-separated metric name onto the Prometheus name
/// alphabet `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label *value* per the exposition format: backslash, double
/// quote, and line feed must be escaped; everything else is literal.
fn prom_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a label set (optionally with an extra label appended), `{}`-free
/// when empty.
fn prom_labels(key: &MetricKey, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = key
        .labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", prom_name(k), prom_escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{}=\"{}\"", k, prom_escape(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Render the hub's current state in Prometheus text exposition format.
pub fn prometheus_text(hub: &MetricsHub) -> String {
    prometheus_text_from(&hub.snapshot())
}

/// Render a previously-taken snapshot in Prometheus text exposition format.
pub fn prometheus_text_from(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    let mut type_line = |out: &mut String, family: &str, kind: &str| {
        if family != last_family {
            out.push_str(&format!("# TYPE {family} {kind}\n"));
            last_family = family.to_string();
        }
    };

    for (key, value) in &snap.counters {
        let family = prom_name(&key.name);
        type_line(&mut out, &family, "counter");
        out.push_str(&format!("{family}{} {value}\n", prom_labels(key, None)));
    }
    for (key, value) in &snap.gauges {
        let family = prom_name(&key.name);
        type_line(&mut out, &family, "gauge");
        out.push_str(&format!("{family}{} {}\n", prom_labels(key, None), fmt_f64(*value)));
    }
    for (key, s) in &snap.hists {
        let family = prom_name(&key.name);
        type_line(&mut out, &family, "summary");
        for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
            out.push_str(&format!(
                "{family}{} {v}\n",
                prom_labels(key, Some(("quantile", q)))
            ));
        }
        out.push_str(&format!("{family}_sum{} {}\n", prom_labels(key, None), s.sum));
        out.push_str(&format!("{family}_count{} {}\n", prom_labels(key, None), s.count));
    }
    // Companion gauges for the exact maxima (a summary has no max sample).
    let mut last_family = String::new();
    for (key, s) in &snap.hists {
        let family = format!("{}_max", prom_name(&key.name));
        if family != last_family {
            out.push_str(&format!("# TYPE {family} gauge\n"));
            last_family = family.clone();
        }
        out.push_str(&format!("{family}{} {}\n", prom_labels(key, None), s.max));
    }
    out
}

/// Strict line-level validator for the Prometheus text exposition format.
///
/// Checks: metric and label names use the legal alphabet, label values are
/// properly quoted/escaped, sample values parse as floats, and every sample
/// belongs to a family announced by a preceding `# TYPE` line (accounting
/// for `_sum`/`_count` on summaries). Returns the first violation.
pub fn check_prometheus_text(text: &str) -> Result<(), String> {
    use std::collections::BTreeMap;
    let mut types: BTreeMap<String, String> = BTreeMap::new();

    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars().enumerate().all(|(i, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
            })
    }

    for (lineno, line) in text.lines().enumerate() {
        let err = |msg: &str| Err(format!("line {}: {msg}: {line:?}", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut words = rest.splitn(3, ' ');
            match words.next() {
                Some("TYPE") => {
                    let name = words.next().unwrap_or("");
                    let kind = words.next().unwrap_or("");
                    if !valid_name(name) {
                        return err("bad family name in TYPE");
                    }
                    if !matches!(kind, "counter" | "gauge" | "summary" | "histogram" | "untyped") {
                        return err("bad family kind in TYPE");
                    }
                    if types.contains_key(name) {
                        return err("duplicate TYPE for family");
                    }
                    types.insert(name.to_string(), kind.to_string());
                }
                Some("HELP") => {}
                _ => return err("unknown comment directive"),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }

        // Sample line: name[{labels}] value
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| format!("line {}: no value: {line:?}", lineno + 1))?;
        let name = &line[..name_end];
        if !valid_name(name) {
            return err("bad metric name");
        }
        let mut rest = &line[name_end..];
        if let Some(body) = rest.strip_prefix('{') {
            let close = body.rfind('}').ok_or_else(|| format!("line {}: unclosed labels", lineno + 1))?;
            let labels = &body[..close];
            rest = &body[close + 1..];
            // Walk `key="value",...` respecting escapes inside values.
            let mut chars = labels.chars().peekable();
            loop {
                let mut key = String::new();
                while let Some(&c) = chars.peek() {
                    if c == '=' {
                        break;
                    }
                    key.push(c);
                    chars.next();
                }
                if !valid_name(&key) {
                    return err("bad label name");
                }
                if chars.next() != Some('=') || chars.next() != Some('"') {
                    return err("label value must be quoted");
                }
                let mut closed = false;
                while let Some(c) = chars.next() {
                    match c {
                        '\\' => match chars.next() {
                            Some('\\') | Some('"') | Some('n') => {}
                            _ => return err("bad escape in label value"),
                        },
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\n' => return err("raw newline in label value"),
                        _ => {}
                    }
                }
                if !closed {
                    return err("unterminated label value");
                }
                match chars.next() {
                    None => break,
                    Some(',') => continue,
                    _ => return err("expected ',' or end of labels"),
                }
            }
        }
        let value = rest.trim_start();
        let value = value.split(' ').next().unwrap_or(""); // optional timestamp after
        let ok = matches!(value, "NaN" | "+Inf" | "-Inf") || value.parse::<f64>().is_ok();
        if !ok {
            return err("sample value is not a float");
        }
        // Family membership: exact, or summary's _sum/_count companions.
        let family_ok = types.contains_key(name)
            || [("_sum", "summary"), ("_count", "summary")].iter().any(|(suf, kind)| {
                name.strip_suffix(suf)
                    .is_some_and(|base| types.get(base).map(String::as_str) == Some(kind))
            });
        if !family_ok {
            return err("sample before its # TYPE line");
        }
    }
    Ok(())
}

/// The metric families `qip-serve` records, as exported Prometheus names.
/// `qip.serve.requests` and `qip.serve.shed` et al. are counters;
/// `qip.serve.queue_depth` is a gauge; `qip.serve.request_ns` is a latency
/// histogram (exported as a summary). A scrape of a serving process is
/// expected to carry at least the `requests` family.
pub const SERVE_COUNTER_FAMILIES: [&str; 4] = [
    "qip_serve_requests",
    "qip_serve_shed",
    "qip_serve_deadline_miss",
    "qip_serve_panics",
];

/// Validate a scrape from a serving process: the text must be well-formed
/// ([`check_prometheus_text`]), must carry the `qip_serve_requests` counter,
/// and every serve family that does appear must be announced with the
/// expected type (`counter` for the shed/deadline/panic counters, `gauge`
/// for queue depth, `summary` for the latency histogram).
pub fn check_serve_families(text: &str) -> Result<(), String> {
    check_prometheus_text(text)?;
    let type_of = |family: &str| -> Option<String> {
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("# TYPE {family} ")).map(str::to_string))
    };
    if type_of("qip_serve_requests").is_none() {
        return Err("scrape has no qip_serve_requests family".to_string());
    }
    for family in SERVE_COUNTER_FAMILIES {
        if let Some(kind) = type_of(family) {
            if kind != "counter" {
                return Err(format!("{family} announced as {kind}, expected counter"));
            }
        }
    }
    if let Some(kind) = type_of("qip_serve_queue_depth") {
        if kind != "gauge" {
            return Err(format!("qip_serve_queue_depth announced as {kind}, expected gauge"));
        }
    }
    if let Some(kind) = type_of("qip_serve_request_ns") {
        if kind != "summary" {
            return Err(format!("qip_serve_request_ns announced as {kind}, expected summary"));
        }
    }
    Ok(())
}

/// The gauge families [`crate::SloTracker::publish`] exports, as Prometheus
/// names: per-objective multi-window burn rates
/// (`qip_slo_burn_rate{objective,window}`), compliance over the long window
/// (`qip_slo_compliance{objective}`), and the declared target
/// (`qip_slo_objective{objective}`).
pub const SLO_GAUGE_FAMILIES: [&str; 3] =
    ["qip_slo_burn_rate", "qip_slo_compliance", "qip_slo_objective"];

/// Validate a scrape from a process that publishes SLOs: the text must be
/// well-formed and carry every [`SLO_GAUGE_FAMILIES`] family, announced as a
/// gauge.
pub fn check_slo_families(text: &str) -> Result<(), String> {
    check_prometheus_text(text)?;
    for family in SLO_GAUGE_FAMILIES {
        let kind = text
            .lines()
            .find_map(|l| l.strip_prefix(&format!("# TYPE {family} ")))
            .ok_or_else(|| format!("scrape has no {family} family"))?;
        if kind != "gauge" {
            return Err(format!("{family} announced as {kind}, expected gauge"));
        }
    }
    Ok(())
}

#[derive(serde::Serialize)]
struct LabelOut {
    key: String,
    value: String,
}

#[derive(serde::Serialize)]
struct CounterOut {
    name: String,
    labels: Vec<LabelOut>,
    value: u64,
}

#[derive(serde::Serialize)]
struct GaugeOut {
    name: String,
    labels: Vec<LabelOut>,
    value: f64,
}

#[derive(serde::Serialize)]
struct HistOut {
    name: String,
    labels: Vec<LabelOut>,
    summary: HistSummary,
}

#[derive(serde::Serialize)]
struct SnapshotOut {
    counters: Vec<CounterOut>,
    gauges: Vec<GaugeOut>,
    histograms: Vec<HistOut>,
}

fn labels_out(key: &MetricKey) -> Vec<LabelOut> {
    key.labels
        .iter()
        .map(|(k, v)| LabelOut { key: k.clone(), value: v.clone() })
        .collect()
}

/// Render the hub's current state as a JSON object
/// (`{"counters":[...],"gauges":[...],"histograms":[...]}`).
pub fn json_snapshot(hub: &MetricsHub) -> String {
    let snap = hub.snapshot();
    let out = SnapshotOut {
        counters: snap
            .counters
            .iter()
            .map(|(k, v)| CounterOut { name: k.name.clone(), labels: labels_out(k), value: *v })
            .collect(),
        gauges: snap
            .gauges
            .iter()
            .map(|(k, v)| GaugeOut { name: k.name.clone(), labels: labels_out(k), value: *v })
            .collect(),
        histograms: snap
            .hists
            .iter()
            .map(|(k, s)| HistOut { name: k.name.clone(), labels: labels_out(k), summary: *s })
            .collect(),
    };
    serde_json::to_string(&out).expect("snapshot is always serializable")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_hub() -> MetricsHub {
        let hub = MetricsHub::new();
        hub.counter_add("qip.compress.calls", &[("compressor", "SZ3+QP")], 3);
        hub.counter_add("qip.compress.calls", &[("compressor", "ZFP")], 1);
        hub.gauge_set("qoz.alpha", &[("compressor", "QoZ")], 1.75);
        for v in [100u64, 200, 300, 4000] {
            hub.observe("qip.compress.duration_ns", &[("compressor", "SZ3+QP")], v);
        }
        hub
    }

    #[test]
    fn prometheus_output_is_valid_and_complete() {
        let hub = sample_hub();
        let text = prometheus_text(&hub);
        check_prometheus_text(&text).unwrap();
        assert!(text.contains("# TYPE qip_compress_calls counter"));
        assert!(text.contains("qip_compress_calls{compressor=\"SZ3+QP\"} 3"));
        assert!(text.contains("# TYPE qip_compress_duration_ns summary"));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains("qip_compress_duration_ns_count{compressor=\"SZ3+QP\"} 4"));
        assert!(text.contains("qip_compress_duration_ns_sum{compressor=\"SZ3+QP\"} 4600"));
        assert!(text.contains("# TYPE qip_compress_duration_ns_max gauge"));
        // TYPE appears once per family even with several label sets.
        assert_eq!(text.matches("# TYPE qip_compress_calls counter").count(), 1);
    }

    #[test]
    fn label_values_are_escaped() {
        let hub = MetricsHub::new();
        hub.counter_add("c", &[("path", "a\\b\"c\nd")], 1);
        let text = prometheus_text(&hub);
        check_prometheus_text(&text).unwrap();
        assert!(text.contains(r#"path="a\\b\"c\nd""#), "got: {text}");
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(check_prometheus_text("no_type_line 1\n").is_err());
        assert!(check_prometheus_text("# TYPE x counter\nx{bad name=\"v\"} 1\n").is_err());
        assert!(check_prometheus_text("# TYPE x counter\nx{a=\"v} 1\n").is_err());
        assert!(check_prometheus_text("# TYPE x counter\nx abc\n").is_err());
        assert!(check_prometheus_text("# TYPE x counter\n# TYPE x counter\n").is_err());
        assert!(check_prometheus_text("# TYPE x counter\nx{a=\"v\"} 1\n").is_ok());
        assert!(check_prometheus_text("# TYPE x summary\nx_count 4\n").is_ok());
        // _sum/_count only piggyback on summaries, not counters.
        assert!(check_prometheus_text("# TYPE x counter\nx_count 4\n").is_err());
    }

    #[test]
    fn serve_families_render_and_validate() {
        let hub = MetricsHub::new();
        hub.counter_add("qip.serve.requests", &[("op", "compress"), ("status", "OK")], 5);
        hub.counter_add("qip.serve.requests", &[("op", "compress"), ("status", "SERVER_BUSY")], 2);
        hub.counter_add("qip.serve.shed", &[("op", "compress")], 2);
        hub.counter_add("qip.serve.deadline_miss", &[("op", "decompress")], 1);
        hub.counter_add("qip.serve.panics", &[("op", "compress")], 1);
        hub.gauge_set("qip.serve.queue_depth", &[("worker", "w0")], 3.0);
        for v in [10_000u64, 20_000, 1_000_000] {
            hub.observe("qip.serve.request_ns", &[("op", "compress")], v);
        }
        let text = prometheus_text(&hub);
        check_serve_families(&text).unwrap();
        assert!(text.contains("qip_serve_requests{op=\"compress\",status=\"SERVER_BUSY\"} 2"));
        assert!(text.contains("# TYPE qip_serve_queue_depth gauge"));
        assert!(text.contains("# TYPE qip_serve_request_ns summary"));
    }

    #[test]
    fn serve_family_check_rejects_wrong_shapes() {
        // Missing the requests family entirely.
        let hub = MetricsHub::new();
        hub.counter_add("qip.other", &[], 1);
        assert!(check_serve_families(&prometheus_text(&hub)).is_err());
        // Family present under the wrong type.
        let wrong = "# TYPE qip_serve_requests gauge\nqip_serve_requests 1\n\
                     # TYPE qip_serve_shed gauge\nqip_serve_shed 0\n";
        assert!(check_serve_families(wrong).is_err());
        // Requests present as a proper counter passes even with others absent.
        let ok = "# TYPE qip_serve_requests counter\nqip_serve_requests{op=\"ping\"} 1\n";
        check_serve_families(ok).unwrap();
    }

    #[test]
    fn slo_families_render_and_validate() {
        let hub = MetricsHub::with_slo(crate::slo::default_objectives(), 1.0);
        hub.slo.record("compress", false, 1_000);
        hub.slo.record("compress", true, 2_000_000_000);
        hub.slo.publish(&hub);
        let text = prometheus_text(&hub);
        check_slo_families(&text).unwrap();
        assert!(text.contains("qip_slo_burn_rate{objective=\"availability\",window=\"5m\"}"));
        assert!(text.contains("qip_slo_compliance{objective=\"latency_500ms\"}"));
        assert!(text.contains("qip_slo_objective{objective=\"availability\"} 0.999"));
        // A scrape without the SLO gauges is rejected.
        assert!(check_slo_families("# TYPE x counter\nx 1\n").is_err());
        // And so is one announcing them under the wrong type.
        let wrong = "# TYPE qip_slo_burn_rate counter\nqip_slo_burn_rate 1\n\
                     # TYPE qip_slo_compliance gauge\nqip_slo_compliance 1\n\
                     # TYPE qip_slo_objective gauge\nqip_slo_objective 1\n";
        assert!(check_slo_families(wrong).is_err());
    }

    #[test]
    fn gauge_non_finite_values_render_as_prometheus_tokens() {
        let hub = MetricsHub::new();
        hub.gauge_set("g", &[], f64::INFINITY);
        let text = prometheus_text(&hub);
        check_prometheus_text(&text).unwrap();
        assert!(text.contains("g +Inf"));
    }

    #[test]
    fn json_snapshot_shape() {
        let hub = sample_hub();
        let json = json_snapshot(&hub);
        assert!(json.starts_with("{\"counters\":["));
        assert!(json.contains("\"name\":\"qip.compress.calls\""));
        assert!(json.contains("\"key\":\"compressor\",\"value\":\"SZ3+QP\""));
        assert!(json.contains("\"histograms\":[{"));
        assert!(json.contains("\"p99\""));
    }
}

//! Tail sampler: a bounded reservoir of per-request tail-latency records.
//!
//! Serving aggregates (histograms, counters) tell you *that* p99 is slow, not
//! *why*. The sampler closes that gap: for a deterministic 1-in-N sample and
//! for any request whose duration crosses a rolling p99 estimate, it retains
//! a [`TailRecord`] keyed by the request's trace ID — duration, queue wait,
//! and (when the `qip-trace` feature is compiled into the binary) the full
//! per-stage `TraceReport` captured live during that request.
//!
//! Capture model: at most one qip-trace session is active at a time, claimed
//! with a lock-free compare-and-swap at request start — a contended claim is
//! simply skipped, so workers never block on the sampler. Because qip-trace
//! capture is process-global, a retained report may include spans from
//! requests that overlapped the sampled one; the record's own duration and
//! queue-wait fields are always exact. Without the trace feature the sampler
//! still retains records (with an empty report), so the tails dump works in
//! default builds.
//!
//! The rolling p99 estimate comes from a [`Histogram`] of request durations
//! that is reset every [`ROLLING_WINDOW`] observations, so the threshold
//! tracks recent traffic instead of the whole process lifetime.

use crate::hist::Histogram;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Default reservoir capacity (records kept before the oldest is evicted).
pub const DEFAULT_TAIL_CAPACITY: usize = 256;
/// Default deterministic sampling period: request `0, N, 2N, …` are sampled.
pub const DEFAULT_SAMPLE_EVERY: u64 = 64;
/// Observations folded into the rolling duration histogram before it resets.
pub const ROLLING_WINDOW: u64 = 65_536;

/// One retained tail sample.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TailRecord {
    /// Trace ID of the request (lower hex, 32 chars).
    pub trace_id: String,
    /// Operation label (`"compress"`, `"read_region"`, …).
    pub op: String,
    /// Response status name (`"OK"`, `"DEADLINE_EXCEEDED"`, …).
    pub status: String,
    /// End-to-end duration (accept → response handed to the writer).
    pub duration_ns: u64,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait_ns: u64,
    /// True when this request was in the deterministic 1-in-N sample.
    pub sampled: bool,
    /// True when the duration crossed the rolling p99 estimate.
    pub over_p99: bool,
    /// The rolling p99 estimate at decision time (0 before any estimate).
    pub p99_estimate_ns: u64,
    /// True when a live qip-trace session captured this request.
    pub traced: bool,
    /// The captured `TraceReport` as JSON (`""` when not traced or the
    /// `qip-trace` feature is not compiled in).
    pub report_json: String,
}

/// Per-request activation handle from [`TailSampler::begin`]; hand it back to
/// [`TailSampler::finish`] when the request completes. If a `traced` token is
/// dropped without `finish`, the trace session slot stays claimed and no
/// further requests are traced (bounded failure, never a deadlock).
#[derive(Debug, Clone, Copy)]
pub struct TailToken {
    /// This request is in the deterministic sample.
    pub sampled: bool,
    /// A qip-trace session was activated for this request.
    pub traced: bool,
}

/// Bounded, thread-safe tail-sample reservoir (see module docs).
pub struct TailSampler {
    capacity: usize,
    sample_every: u64,
    counter: AtomicU64,
    /// One qip-trace session at a time; claimed by CAS, never waited on.
    session_busy: AtomicBool,
    durations: Mutex<Histogram>,
    ring: Mutex<VecDeque<TailRecord>>,
}

impl Default for TailSampler {
    fn default() -> Self {
        TailSampler::with_config(DEFAULT_TAIL_CAPACITY, DEFAULT_SAMPLE_EVERY)
    }
}

impl TailSampler {
    /// A sampler keeping at most `capacity` records, sampling every
    /// `sample_every`-th request deterministically (min 1 for both).
    pub fn with_config(capacity: usize, sample_every: u64) -> TailSampler {
        TailSampler {
            capacity: capacity.max(1),
            sample_every: sample_every.max(1),
            counter: AtomicU64::new(0),
            session_busy: AtomicBool::new(false),
            durations: Mutex::new(Histogram::new()),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Request start: decide the deterministic sample membership and try to
    /// claim the (single) live trace session. Wait-free.
    pub fn begin(&self) -> TailToken {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let sampled = n.is_multiple_of(self.sample_every);
        let traced = qip_trace::compiled()
            && self
                .session_busy
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok();
        if traced {
            qip_trace::begin_session();
        }
        TailToken { sampled, traced }
    }

    /// Request end: close the trace session (if this request held it), update
    /// the rolling p99 estimate, and retain a record when the request was
    /// sampled or crossed the estimate.
    pub fn finish(
        &self,
        token: TailToken,
        trace_id: &str,
        op: &str,
        status: &str,
        duration_ns: u64,
        queue_wait_ns: u64,
    ) {
        // Close the session first so the claim is released on every path.
        let report_json = if token.traced {
            let report = qip_trace::take_report();
            self.session_busy.store(false, Ordering::Release);
            report.to_json()
        } else {
            String::new()
        };

        let p99 = {
            let mut h = self.durations.lock().unwrap();
            let estimate = h.quantile(0.99);
            if h.count() >= ROLLING_WINDOW {
                *h = Histogram::new();
            }
            h.record(duration_ns);
            estimate
        };
        let over_p99 = p99.is_some_and(|p| duration_ns > p);

        if !(token.sampled || over_p99) {
            return;
        }
        let record = TailRecord {
            trace_id: trace_id.to_string(),
            op: op.to_string(),
            status: status.to_string(),
            duration_ns,
            queue_wait_ns,
            sampled: token.sampled,
            over_p99,
            p99_estimate_ns: p99.unwrap_or(0),
            traced: token.traced,
            report_json,
        };
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Total requests observed via [`TailSampler::begin`].
    pub fn total_seen(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current rolling p99 estimate, if any observations exist.
    pub fn p99_estimate_ns(&self) -> Option<u64> {
        self.durations.lock().unwrap().quantile(0.99)
    }

    /// Copy out the retained records, oldest first.
    pub fn records(&self) -> Vec<TailRecord> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Look up a retained record by its trace ID (most recent wins).
    pub fn find(&self, trace_id: &str) -> Option<TailRecord> {
        self.ring.lock().unwrap().iter().rev().find(|r| r.trace_id == trace_id).cloned()
    }

    /// Render the retained records as JSON Lines (oldest first, trailing
    /// newline when non-empty) — the `--tails` / FLIGHT(tails) dump format.
    pub fn dump_jsonl(&self) -> String {
        use serde::Serialize;
        let mut out = String::new();
        for r in self.ring.lock().unwrap().iter() {
            r.write_json(&mut out);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finish_plain(s: &TailSampler, tok: TailToken, id: &str, ns: u64) {
        s.finish(tok, id, "compress", "OK", ns, 0);
    }

    #[test]
    fn deterministic_sample_is_every_nth() {
        let s = TailSampler::with_config(64, 4);
        for i in 0..12u64 {
            let tok = s.begin();
            assert_eq!(tok.sampled, i % 4 == 0, "request {i}");
            finish_plain(&s, tok, &format!("{i:032x}"), 100);
        }
        assert_eq!(s.total_seen(), 12);
        let ids: Vec<String> = s.records().iter().map(|r| r.trace_id.clone()).collect();
        assert_eq!(
            ids,
            vec![format!("{:032x}", 0u64), format!("{:032x}", 4u64), format!("{:032x}", 8u64)]
        );
        assert!(s.records().iter().all(|r| r.sampled && !r.over_p99));
    }

    #[test]
    fn over_p99_requests_are_retained_even_when_not_sampled() {
        // sample_every large enough that only request 0 is in the sample.
        let s = TailSampler::with_config(64, 1_000_000);
        // Build a tight baseline: 200 fast requests.
        for i in 0..200u64 {
            let tok = s.begin();
            finish_plain(&s, tok, &format!("{i:032x}"), 1_000);
        }
        // A 100x outlier must cross the rolling p99 and be retained.
        let tok = s.begin();
        assert!(!tok.sampled);
        finish_plain(&s, tok, &"ff".repeat(16), 100_000);
        let rec = s.find(&"ff".repeat(16)).expect("outlier retained");
        assert!(rec.over_p99);
        assert!(!rec.sampled);
        assert!(rec.p99_estimate_ns > 0);
        // The fast non-sampled requests were not retained.
        assert_eq!(s.len(), 2, "sample[0] + outlier only");
    }

    #[test]
    fn reservoir_is_bounded() {
        let s = TailSampler::with_config(4, 1); // sample everything
        for i in 0..100u64 {
            let tok = s.begin();
            finish_plain(&s, tok, &format!("{i:032x}"), 10);
        }
        assert_eq!(s.len(), 4);
        // Oldest evicted: the survivors are the last four.
        assert_eq!(s.records()[0].trace_id, format!("{:032x}", 96u64));
    }

    #[test]
    fn dump_jsonl_round_trips_key_fields() {
        let s = TailSampler::with_config(8, 1);
        let tok = s.begin();
        s.finish(tok, "deadbeef", "read_region", "BAD_REGION", 777, 55);
        let dump = s.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[0].contains("\"trace_id\":\"deadbeef\""));
        assert!(lines[0].contains("\"op\":\"read_region\""));
        assert!(lines[0].contains("\"status\":\"BAD_REGION\""));
        assert!(lines[0].contains("\"duration_ns\":777"));
        assert!(lines[0].contains("\"queue_wait_ns\":55"));
        assert!(lines[0].contains("\"sampled\":true"));
    }

    #[test]
    fn concurrent_begin_finish_never_lose_the_session_slot() {
        let s = TailSampler::with_config(1024, 1);
        std::thread::scope(|sc| {
            for t in 0..8u64 {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..200u64 {
                        let tok = s.begin();
                        s.finish(tok, &format!("{:032x}", t * 1000 + i), "compress", "OK", i, 0);
                    }
                });
            }
        });
        assert_eq!(s.total_seen(), 1600);
        // The session slot is free again afterwards (claimable when the trace
        // feature is compiled; vacuously true otherwise).
        assert!(!s.session_busy.load(Ordering::Relaxed));
    }
}

//! Floating-point scalar abstraction.
//!
//! All compressors in the workspace are generic over [`Scalar`] so that the
//! single-precision datasets (Miranda, SegSalt, …) and the double-precision
//! one (S3D) share the same code paths, as in the original SZ3/QoZ codebases.

use crate::TensorError;

/// A floating-point sample type understood by the compressors.
///
/// Only `f32` and `f64` implement this; the trait exists to avoid pulling in a
/// numeric-traits crate for two types.
pub trait Scalar:
    Copy
    + Clone
    + PartialOrd
    + PartialEq
    + std::fmt::Debug
    + std::fmt::Display
    + Default
    + Send
    + Sync
    + 'static
{
    /// Number of bytes in the on-disk representation (4 or 8).
    const BYTES: usize;
    /// Number of bits per sample; the numerator of the bit-rate formula
    /// (paper Sec. III-A: bit-rate = 32/64 over compression ratio).
    const BITS: u32;
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Lossless widening to `f64` (exact for `f32` inputs).
    fn to_f64(self) -> f64;
    /// Narrowing conversion from `f64` (rounds for `f32`).
    fn from_f64(v: f64) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// True if the value is finite (not NaN/inf).
    fn is_finite(self) -> bool;
    /// Append the little-endian byte representation to `out`.
    fn write_le(self, out: &mut Vec<u8>);
    /// Read a value from the first `Self::BYTES` bytes of `src`.
    fn read_le(src: &[u8]) -> Result<Self, TensorError>;
    /// The slot inside a [`ScalarPools`] arena that holds buffers of `Self`.
    fn pool_slot(pools: &mut ScalarPools) -> &mut Vec<Vec<Self>>;
}

/// A typed pool of reusable scalar working buffers.
///
/// Compression contexts hold one of these so repeated `compress_into` /
/// `decompress_into` calls can check out typed scratch planes (working copies
/// of the field, anchor/unpredictable channels) without re-allocating them.
/// Buffers come back cleared but keep their capacity; a pool can serve `f32`
/// and `f64` callers interchangeably because each type has its own slot.
#[derive(Debug, Default)]
pub struct ScalarPools {
    f32: Vec<Vec<f32>>,
    f64: Vec<Vec<f64>>,
}

impl ScalarPools {
    /// Create an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check out a cleared buffer, reusing a pooled one when available.
    pub fn acquire<T: Scalar>(&mut self) -> Vec<T> {
        let mut v = T::pool_slot(self).pop().unwrap_or_default();
        v.clear();
        v
    }

    /// Return a buffer to the pool for later reuse (capacity is retained).
    pub fn release<T: Scalar>(&mut self, buf: Vec<T>) {
        T::pool_slot(self).push(buf);
    }

    /// Drop all pooled buffers, releasing their capacity.
    pub fn clear(&mut self) {
        self.f32.clear();
        self.f64.clear();
    }
}

impl Scalar for f32 {
    const BYTES: usize = 4;
    const BITS: u32 = 32;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline]
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    #[inline]
    fn read_le(src: &[u8]) -> Result<Self, TensorError> {
        let bytes: [u8; 4] = src
            .get(..4)
            .and_then(|s| s.try_into().ok())
            .ok_or(TensorError::BadBytes("need 4 bytes for f32"))?;
        Ok(f32::from_le_bytes(bytes))
    }
    #[inline]
    fn pool_slot(pools: &mut ScalarPools) -> &mut Vec<Vec<Self>> {
        &mut pools.f32
    }
}

impl Scalar for f64 {
    const BYTES: usize = 8;
    const BITS: u32 = 64;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    #[inline]
    fn read_le(src: &[u8]) -> Result<Self, TensorError> {
        let bytes: [u8; 8] = src
            .get(..8)
            .and_then(|s| s.try_into().ok())
            .ok_or(TensorError::BadBytes("need 8 bytes for f64"))?;
        Ok(f64::from_le_bytes(bytes))
    }
    #[inline]
    fn pool_slot(pools: &mut ScalarPools) -> &mut Vec<Vec<Self>> {
        &mut pools.f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip_bytes() {
        let mut buf = Vec::new();
        1.5f32.write_le(&mut buf);
        assert_eq!(buf.len(), 4);
        assert_eq!(f32::read_le(&buf).unwrap(), 1.5);
    }

    #[test]
    fn f64_roundtrip_bytes() {
        let mut buf = Vec::new();
        (-2.25f64).write_le(&mut buf);
        assert_eq!(buf.len(), 8);
        assert_eq!(f64::read_le(&buf).unwrap(), -2.25);
    }

    #[test]
    fn short_buffer_is_error() {
        assert!(f32::read_le(&[1, 2, 3]).is_err());
        assert!(f64::read_le(&[0; 7]).is_err());
    }

    #[test]
    fn widening_is_exact_for_f32() {
        let v = 0.1f32;
        assert_eq!(f32::from_f64(v.to_f64()), v);
    }

    #[test]
    fn constants() {
        assert_eq!(<f32 as Scalar>::BITS, 32);
        assert_eq!(<f64 as Scalar>::BITS, 64);
        assert_eq!(<f32 as Scalar>::ZERO + <f32 as Scalar>::ONE, 1.0);
    }

    #[test]
    fn pool_reuses_capacity_per_type() {
        let mut pools = ScalarPools::new();
        let mut a: Vec<f32> = pools.acquire();
        a.extend_from_slice(&[1.0, 2.0, 3.0]);
        let cap = a.capacity();
        pools.release(a);

        // Acquiring the other type must not hand back the f32 buffer.
        let b: Vec<f64> = pools.acquire();
        assert!(b.is_empty());
        pools.release(b);

        let c: Vec<f32> = pools.acquire();
        assert!(c.is_empty(), "pooled buffer must come back cleared");
        assert!(c.capacity() >= cap, "pooled buffer must keep its capacity");
    }
}

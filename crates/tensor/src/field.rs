//! Owned field of scalar samples on a regular grid.

use crate::{Scalar, Shape, TensorError};

/// An owned, row-major N-d array of samples.
///
/// This is the unit of compression throughout the workspace: datasets are
/// collections of named `Field`s, compressors map a `Field` to bytes and back.
#[derive(Debug, Clone, PartialEq)]
pub struct Field<T: Scalar> {
    shape: Shape,
    data: Vec<T>,
}

impl<T: Scalar> Field<T> {
    /// Wrap an existing buffer. Fails if the length does not match the shape.
    pub fn from_vec(shape: Shape, data: Vec<T>) -> Result<Self, TensorError> {
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch { expected: shape.len(), actual: data.len() });
        }
        Ok(Field { shape, data })
    }

    /// All-zero field.
    pub fn zeros(shape: Shape) -> Self {
        let n = shape.len();
        Field { shape, data: vec![T::ZERO; n] }
    }

    /// Build a field by evaluating `f` at every coordinate.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(&[usize]) -> T) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        let ndim = shape.ndim();
        let mut coords = vec![0usize; ndim];
        for _ in 0..shape.len() {
            data.push(f(&coords));
            for axis in (0..ndim).rev() {
                coords[axis] += 1;
                if coords[axis] < shape.dim(axis) {
                    break;
                }
                coords[axis] = 0;
            }
        }
        Field { shape, data }
    }

    /// The field's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the field holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the sample buffer (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the sample buffer (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the field, returning the buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Sample at a coordinate tuple.
    #[inline]
    pub fn get(&self, coords: &[usize]) -> T {
        self.data[self.shape.flat(coords)]
    }

    /// Overwrite the sample at a coordinate tuple.
    #[inline]
    pub fn set(&mut self, coords: &[usize], v: T) {
        let i = self.shape.flat(coords);
        self.data[i] = v;
    }

    /// Minimum and maximum finite sample values; `None` for empty fields or
    /// fields with no finite samples.
    pub fn min_max(&self) -> Option<(T, T)> {
        let mut it = self.data.iter().copied().filter(|v| v.is_finite());
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for v in it {
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        Some((lo, hi))
    }

    /// Value range `max - min` as `f64`; `0.0` for constant/empty fields.
    pub fn value_range(&self) -> f64 {
        match self.min_max() {
            Some((lo, hi)) => hi.to_f64() - lo.to_f64(),
            None => 0.0,
        }
    }

    /// Extract the (ndim-1)-d plane at `index` along `axis`.
    pub fn slice_plane(&self, axis: usize, index: usize) -> Result<Field<T>, TensorError> {
        let ndim = self.shape.ndim();
        if axis >= ndim {
            return Err(TensorError::AxisOutOfRange { axis, ndim });
        }
        if index >= self.shape.dim(axis) {
            return Err(TensorError::IndexOutOfRange { axis, index, extent: self.shape.dim(axis) });
        }
        let out_shape = self.shape.drop_axis(axis);
        let mut out = Vec::with_capacity(out_shape.len());
        let mut coords = vec![0usize; ndim];
        coords[axis] = index;
        let rest: Vec<usize> = (0..ndim).filter(|&a| a != axis).collect();
        // Odometer over the remaining axes, last-fastest to keep output row-major.
        let total = out_shape.len();
        for _ in 0..total {
            out.push(self.data[self.shape.flat(&coords)]);
            for &a in rest.iter().rev() {
                coords[a] += 1;
                if coords[a] < self.shape.dim(a) {
                    break;
                }
                coords[a] = 0;
            }
        }
        Field::from_vec(out_shape, out)
    }

    /// Extract a rectangular subregion `origin..origin+extent` (clipped to the field).
    pub fn subregion(&self, origin: &[usize], extent: &[usize]) -> Field<T> {
        assert_eq!(origin.len(), self.shape.ndim());
        assert_eq!(extent.len(), self.shape.ndim());
        let clipped: Vec<usize> = origin
            .iter()
            .zip(extent)
            .zip(self.shape.dims())
            .map(|((&o, &e), &d)| e.min(d.saturating_sub(o)))
            .collect();
        let out_shape = Shape::new(&clipped);
        let mut coords = origin.to_vec();
        let mut out = Vec::with_capacity(out_shape.len());
        let ndim = self.shape.ndim();
        for _ in 0..out_shape.len() {
            out.push(self.data[self.shape.flat(&coords)]);
            for axis in (0..ndim).rev() {
                coords[axis] += 1;
                if coords[axis] < origin[axis] + clipped[axis] {
                    break;
                }
                coords[axis] = origin[axis];
            }
        }
        Field { shape: out_shape, data: out }
    }

    /// Write `block` into this field at `origin` (the inverse of
    /// [`Field::subregion`]); the block must fit entirely inside the field.
    pub fn write_subregion(&mut self, origin: &[usize], block: &Field<T>) {
        assert_eq!(origin.len(), self.shape.ndim());
        assert_eq!(block.shape().ndim(), self.shape.ndim());
        let ndim = self.shape.ndim();
        for (a, (&o, &e)) in origin.iter().zip(block.shape().dims()).enumerate() {
            assert!(
                o + e <= self.shape.dim(a),
                "block exceeds field along axis {a}: {o}+{e} > {}",
                self.shape.dim(a)
            );
        }
        let mut coords = origin.to_vec();
        let extents = block.shape().dims().to_vec();
        for (i, &v) in block.as_slice().iter().enumerate() {
            let _ = i;
            let flat = self.shape.flat(&coords);
            self.data[flat] = v;
            for axis in (0..ndim).rev() {
                coords[axis] += 1;
                if coords[axis] < origin[axis] + extents[axis] {
                    break;
                }
                coords[axis] = origin[axis];
            }
        }
    }

    /// Serialize to little-endian bytes (shape is *not* included).
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * T::BYTES);
        for &v in &self.data {
            v.write_le(&mut out);
        }
        out
    }

    /// Deserialize from little-endian bytes produced by [`Field::to_le_bytes`].
    pub fn from_le_bytes(shape: Shape, bytes: &[u8]) -> Result<Self, TensorError> {
        if bytes.len() != shape.len() * T::BYTES {
            return Err(TensorError::LengthMismatch {
                expected: shape.len() * T::BYTES,
                actual: bytes.len(),
            });
        }
        let mut data = Vec::with_capacity(shape.len());
        for chunk in bytes.chunks_exact(T::BYTES) {
            data.push(T::read_le(chunk)?);
        }
        Ok(Field { shape, data })
    }

    /// Downsample by keeping every `factor`-th sample along every axis.
    /// Used to build reduced-size experiment workloads from full-size shapes.
    pub fn decimate(&self, factor: usize) -> Field<T> {
        assert!(factor >= 1);
        let dims: Vec<usize> = self.shape.dims().iter().map(|&d| d.div_ceil(factor)).collect();
        let out_shape = Shape::new(&dims);
        let ndim = dims.len();
        let mut coords = vec![0usize; ndim];
        let mut out = Vec::with_capacity(out_shape.len());
        for _ in 0..out_shape.len() {
            let src: Vec<usize> = coords.iter().map(|&c| c * factor).collect();
            out.push(self.data[self.shape.flat(&src)]);
            for axis in (0..ndim).rev() {
                coords[axis] += 1;
                if coords[axis] < dims[axis] {
                    break;
                }
                coords[axis] = 0;
            }
        }
        Field { shape: out_shape, data: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_field(shape: Shape) -> Field<f32> {
        let n = shape.len();
        Field::from_vec(shape, (0..n).map(|i| i as f32).collect()).unwrap()
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Field::<f32>::from_vec(Shape::d2(2, 2), vec![0.0; 3]).is_err());
        assert!(Field::<f32>::from_vec(Shape::d2(2, 2), vec![0.0; 4]).is_ok());
    }

    #[test]
    fn from_fn_matches_coords() {
        let f = Field::<f32>::from_fn(Shape::d2(3, 4), |c| (c[0] * 10 + c[1]) as f32);
        assert_eq!(f.get(&[2, 3]), 23.0);
        assert_eq!(f.get(&[0, 0]), 0.0);
    }

    #[test]
    fn min_max_ignores_nonfinite() {
        let f =
            Field::from_vec(Shape::d1(4), vec![1.0f32, f32::NAN, -3.0, 2.0]).unwrap();
        assert_eq!(f.min_max(), Some((-3.0, 2.0)));
        assert_eq!(f.value_range(), 5.0);
    }

    #[test]
    fn min_max_empty() {
        let f = Field::<f32>::zeros(Shape::d2(0, 5));
        assert_eq!(f.min_max(), None);
        assert_eq!(f.value_range(), 0.0);
    }

    #[test]
    fn slice_plane_axis0() {
        let f = seq_field(Shape::d3(2, 3, 4));
        let p = f.slice_plane(0, 1).unwrap();
        assert_eq!(p.shape().dims(), &[3, 4]);
        assert_eq!(p.get(&[0, 0]), 12.0);
        assert_eq!(p.get(&[2, 3]), 23.0);
    }

    #[test]
    fn slice_plane_axis2() {
        let f = seq_field(Shape::d3(2, 3, 4));
        let p = f.slice_plane(2, 3).unwrap();
        assert_eq!(p.shape().dims(), &[2, 3]);
        assert_eq!(p.get(&[0, 0]), 3.0);
        assert_eq!(p.get(&[1, 2]), 23.0);
    }

    #[test]
    fn slice_plane_bad_args() {
        let f = seq_field(Shape::d3(2, 3, 4));
        assert!(f.slice_plane(3, 0).is_err());
        assert!(f.slice_plane(1, 3).is_err());
    }

    #[test]
    fn subregion_interior_and_clipped() {
        let f = seq_field(Shape::d2(4, 5));
        let r = f.subregion(&[1, 2], &[2, 2]);
        assert_eq!(r.shape().dims(), &[2, 2]);
        assert_eq!(r.as_slice(), &[7.0, 8.0, 12.0, 13.0]);
        let clipped = f.subregion(&[3, 3], &[10, 10]);
        assert_eq!(clipped.shape().dims(), &[1, 2]);
        assert_eq!(clipped.as_slice(), &[18.0, 19.0]);
    }

    #[test]
    fn byte_roundtrip() {
        let f = seq_field(Shape::d2(3, 3));
        let bytes = f.to_le_bytes();
        let g = Field::<f32>::from_le_bytes(Shape::d2(3, 3), &bytes).unwrap();
        assert_eq!(f, g);
        assert!(Field::<f32>::from_le_bytes(Shape::d2(3, 3), &bytes[1..]).is_err());
    }

    #[test]
    fn decimate_keeps_every_kth() {
        let f = seq_field(Shape::d2(4, 6));
        let d = f.decimate(2);
        assert_eq!(d.shape().dims(), &[2, 3]);
        assert_eq!(d.as_slice(), &[0.0, 2.0, 4.0, 12.0, 14.0, 16.0]);
    }

    #[test]
    fn write_subregion_inverts_subregion() {
        let f = seq_field(Shape::d3(4, 5, 6));
        let block = f.subregion(&[1, 2, 3], &[2, 2, 2]);
        let mut g = Field::<f32>::zeros(Shape::d3(4, 5, 6));
        g.write_subregion(&[1, 2, 3], &block);
        assert_eq!(g.subregion(&[1, 2, 3], &[2, 2, 2]), block);
        // Outside the block stays zero.
        assert_eq!(g.get(&[0, 0, 0]), 0.0);
    }

    #[test]
    #[should_panic]
    fn write_subregion_rejects_overflow() {
        let mut g = Field::<f32>::zeros(Shape::d2(4, 4));
        let block = Field::<f32>::zeros(Shape::d2(3, 3));
        g.write_subregion(&[2, 2], &block);
    }

    #[test]
    fn decimate_identity() {
        let f = seq_field(Shape::d3(2, 3, 4));
        assert_eq!(f.decimate(1), f);
    }
}

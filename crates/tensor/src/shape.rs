//! Row-major shapes, strides and coordinate arithmetic.

use crate::TensorError;

/// Maximum dimensionality supported by the workspace (RTM is 4-D).
pub const MAX_NDIM: usize = 4;

/// A row-major (C-order) shape: the **last** axis varies fastest in memory.
///
/// In the paper's 3-D convention the axes are named `(z, y, x)` with `x`
/// contiguous; this matches how SZ3 stores fields and how the interpolation
/// passes in [Fig. 2 of the paper] walk memory.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
    strides: Vec<usize>,
}

impl Shape {
    /// Build a shape from its extents. Zero-extent axes are allowed (empty field).
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            !dims.is_empty() && dims.len() <= MAX_NDIM,
            "shape must be 1..={MAX_NDIM}-d, got {}-d",
            dims.len()
        );
        let mut strides = vec![0usize; dims.len()];
        let mut acc = 1usize;
        for (i, &d) in dims.iter().enumerate().rev() {
            strides[i] = acc;
            acc = acc.saturating_mul(d);
        }
        Shape { dims: dims.to_vec(), strides }
    }

    /// Convenience constructor for 3-D shapes `(n0, n1, n2)`.
    pub fn d3(n0: usize, n1: usize, n2: usize) -> Self {
        Shape::new(&[n0, n1, n2])
    }

    /// Convenience constructor for 2-D shapes.
    pub fn d2(n0: usize, n1: usize) -> Self {
        Shape::new(&[n0, n1])
    }

    /// Convenience constructor for 1-D shapes.
    pub fn d1(n0: usize) -> Self {
        Shape::new(&[n0])
    }

    /// Number of axes.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Extents per axis.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Extent along `axis`.
    #[inline]
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides (in elements) per axis.
    #[inline]
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Stride (in elements) along `axis`.
    #[inline]
    pub fn stride(&self, axis: usize) -> usize {
        self.strides[axis]
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True when any extent is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index of a coordinate tuple (must have `ndim` entries, in range).
    #[inline]
    pub fn flat(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.ndim());
        coords
            .iter()
            .zip(&self.strides)
            .map(|(&c, &s)| c * s)
            .sum()
    }

    /// Checked version of [`Shape::flat`].
    pub fn flat_checked(&self, coords: &[usize]) -> Result<usize, TensorError> {
        if coords.len() != self.ndim() {
            return Err(TensorError::AxisOutOfRange { axis: coords.len(), ndim: self.ndim() });
        }
        for (axis, (&c, &d)) in coords.iter().zip(&self.dims).enumerate() {
            if c >= d {
                return Err(TensorError::IndexOutOfRange { axis, index: c, extent: d });
            }
        }
        Ok(self.flat(coords))
    }

    /// Coordinate tuple of a flat index.
    pub fn coords(&self, mut flat: usize) -> Vec<usize> {
        let mut out = vec![0usize; self.ndim()];
        for (i, &s) in self.strides.iter().enumerate() {
            if let Some(q) = flat.checked_div(s) {
                out[i] = q;
                flat %= s;
            }
        }
        out
    }

    /// Shape with `axis` removed (for plane slicing). Panics if 1-D.
    pub fn drop_axis(&self, axis: usize) -> Shape {
        assert!(self.ndim() > 1, "cannot drop the only axis");
        assert!(axis < self.ndim());
        let dims: Vec<usize> = self
            .dims
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != axis)
            .map(|(_, &d)| d)
            .collect();
        Shape::new(&dims)
    }

    /// Iterate over the origins of non-overlapping blocks of extent
    /// `block` per axis (edge blocks are clipped by the consumer).
    pub fn blocks(&self, block: usize) -> BlockIter {
        assert!(block > 0);
        BlockIter { shape: self.clone(), block, next: Some(vec![0; self.ndim()]) }
    }
}

/// Iterator over block origins; see [`Shape::blocks`].
pub struct BlockIter {
    shape: Shape,
    block: usize,
    next: Option<Vec<usize>>,
}

impl Iterator for BlockIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let cur = self.next.take()?;
        if self.shape.is_empty() {
            return None;
        }
        // Advance odometer in units of `block`, last axis fastest.
        let mut nxt = cur.clone();
        for axis in (0..self.shape.ndim()).rev() {
            nxt[axis] += self.block;
            if nxt[axis] < self.shape.dim(axis) {
                self.next = Some(nxt);
                return Some(cur);
            }
            nxt[axis] = 0;
        }
        self.next = None;
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::d3(4, 5, 6);
        assert_eq!(s.strides(), &[30, 6, 1]);
        assert_eq!(s.len(), 120);
    }

    #[test]
    fn flat_and_coords_inverse() {
        let s = Shape::d3(3, 4, 5);
        for f in 0..s.len() {
            let c = s.coords(f);
            assert_eq!(s.flat(&c), f);
        }
    }

    #[test]
    fn flat_checked_rejects_out_of_range() {
        let s = Shape::d2(2, 3);
        assert!(s.flat_checked(&[1, 2]).is_ok());
        assert!(matches!(
            s.flat_checked(&[2, 0]),
            Err(TensorError::IndexOutOfRange { axis: 0, .. })
        ));
        assert!(s.flat_checked(&[0]).is_err());
    }

    #[test]
    fn drop_axis_shapes() {
        let s = Shape::d3(4, 5, 6);
        assert_eq!(s.drop_axis(0).dims(), &[5, 6]);
        assert_eq!(s.drop_axis(1).dims(), &[4, 6]);
        assert_eq!(s.drop_axis(2).dims(), &[4, 5]);
    }

    #[test]
    fn block_iter_covers_all_origins() {
        let s = Shape::d2(5, 7);
        let origins: Vec<_> = s.blocks(3).collect();
        assert_eq!(
            origins,
            vec![
                vec![0, 0],
                vec![0, 3],
                vec![0, 6],
                vec![3, 0],
                vec![3, 3],
                vec![3, 6]
            ]
        );
    }

    #[test]
    fn block_iter_empty_shape_yields_nothing() {
        let s = Shape::d2(0, 4);
        assert_eq!(s.blocks(2).count(), 0);
    }

    #[test]
    fn one_d_shape() {
        let s = Shape::d1(10);
        assert_eq!(s.strides(), &[1]);
        assert_eq!(s.coords(7), vec![7]);
    }

    #[test]
    fn four_d_shape() {
        let s = Shape::new(&[2, 3, 4, 5]);
        assert_eq!(s.strides(), &[60, 20, 5, 1]);
        assert_eq!(s.flat(&[1, 2, 3, 4]), 60 + 40 + 15 + 4);
    }

    #[test]
    #[should_panic]
    fn five_d_rejected() {
        let _ = Shape::new(&[1, 1, 1, 1, 1]);
    }
}

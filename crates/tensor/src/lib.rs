//! N-dimensional field container for scientific data.
//!
//! This crate is the bottom layer of the QIP workspace: a small, dependency-free
//! container for regular grids of floating-point samples, with the handful of
//! operations the compressors actually need — row-major strides, flat/coordinate
//! conversion, plane slicing, block iteration, and byte (de)serialization.
//!
//! Scientific fields in this reproduction are 1-D to 4-D (the RTM dataset is a
//! 4-D time series); the [`Shape`] type is dynamic over that range.

#![warn(missing_docs)]

mod field;
mod region;
mod scalar;
mod shape;

pub use field::Field;
pub use region::Region;
pub use scalar::{Scalar, ScalarPools};
pub use shape::{BlockIter, Shape};

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided buffer length does not match the shape volume.
    LengthMismatch {
        /// Elements the shape requires.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
    /// An axis argument exceeds the dimensionality.
    AxisOutOfRange {
        /// Offending axis index.
        axis: usize,
        /// Dimensionality of the shape.
        ndim: usize,
    },
    /// A coordinate exceeds the extent along its axis.
    IndexOutOfRange {
        /// Axis the index belongs to.
        axis: usize,
        /// Offending coordinate.
        index: usize,
        /// Extent along that axis.
        extent: usize,
    },
    /// Byte buffer cannot be decoded into the requested scalar type.
    BadBytes(&'static str),
    /// A region's rank disagrees with the field (or with itself).
    RankMismatch {
        /// Rank the context requires.
        expected: usize,
        /// Rank actually provided.
        actual: usize,
    },
    /// A region selects zero samples along an axis.
    ZeroExtent {
        /// Offending axis index.
        axis: usize,
    },
    /// A region's `origin + extent` exceeds the field along an axis.
    RegionOutOfBounds {
        /// Offending axis index.
        axis: usize,
        /// Region start on that axis.
        origin: usize,
        /// Region extent on that axis.
        extent: usize,
        /// Field extent on that axis.
        dim: usize,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: shape wants {expected}, got {actual}")
            }
            TensorError::AxisOutOfRange { axis, ndim } => {
                write!(f, "axis {axis} out of range for {ndim}-d shape")
            }
            TensorError::IndexOutOfRange { axis, index, extent } => {
                write!(f, "index {index} out of range for axis {axis} (extent {extent})")
            }
            TensorError::BadBytes(msg) => write!(f, "bad bytes: {msg}"),
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "region rank mismatch: field is {expected}-d, region is {actual}-d")
            }
            TensorError::ZeroExtent { axis } => {
                write!(f, "region selects zero samples along axis {axis}")
            }
            TensorError::RegionOutOfBounds { axis, origin, extent, dim } => {
                write!(
                    f,
                    "region out of bounds on axis {axis}: {origin}+{extent} exceeds extent {dim}"
                )
            }
        }
    }
}

impl std::error::Error for TensorError {}

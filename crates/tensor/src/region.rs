//! Rectangular regions of interest within a field.
//!
//! A [`Region`] is the shared "RegionSpec" used across the workspace: the
//! tiled container's random-access reads, the serve `READ_REGION` op, and the
//! CLI all validate against the *same* rules via [`Region::validate`], so a
//! malformed region is rejected identically everywhere instead of by
//! per-call-site checks.

use crate::TensorError;

/// An axis-aligned rectangular region `origin .. origin + extent` inside an
/// N-d field.
///
/// Construction is infallible; call [`Region::validate`] against the target
/// field's dims before use. Extents are **exact** (never clipped): a region
/// that pokes out of the field is an error, because a caller asking for
/// `origin + extent` samples should not silently receive fewer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Region {
    origin: Vec<usize>,
    extent: Vec<usize>,
}

impl Region {
    /// A region starting at `origin` spanning `extent` samples per axis.
    pub fn new(origin: &[usize], extent: &[usize]) -> Self {
        Region { origin: origin.to_vec(), extent: extent.to_vec() }
    }

    /// A region covering an entire field of the given dims.
    pub fn full(dims: &[usize]) -> Self {
        Region { origin: vec![0; dims.len()], extent: dims.to_vec() }
    }

    /// Per-axis starting coordinates.
    #[inline]
    pub fn origin(&self) -> &[usize] {
        &self.origin
    }

    /// Per-axis sample counts.
    #[inline]
    pub fn extent(&self) -> &[usize] {
        &self.extent
    }

    /// Number of axes (of the origin; [`Region::validate`] checks that the
    /// extent agrees).
    #[inline]
    pub fn ndim(&self) -> usize {
        self.origin.len()
    }

    /// Total number of samples the region selects.
    pub fn len(&self) -> usize {
        if self.extent.is_empty() {
            return 0;
        }
        self.extent.iter().product()
    }

    /// True when the region selects no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Check this region against a field of the given dims.
    ///
    /// Typed rejections, in the order checked:
    /// - [`TensorError::RankMismatch`] — origin/extent rank differ, or differ
    ///   from `dims.len()`;
    /// - [`TensorError::ZeroExtent`] — any axis selects zero samples;
    /// - [`TensorError::RegionOutOfBounds`] — `origin + extent` exceeds the
    ///   field along any axis (checked without overflow).
    pub fn validate(&self, dims: &[usize]) -> Result<(), TensorError> {
        if self.extent.len() != self.origin.len() {
            return Err(TensorError::RankMismatch {
                expected: self.origin.len(),
                actual: self.extent.len(),
            });
        }
        if self.origin.len() != dims.len() {
            return Err(TensorError::RankMismatch {
                expected: dims.len(),
                actual: self.origin.len(),
            });
        }
        for (axis, &e) in self.extent.iter().enumerate() {
            if e == 0 {
                return Err(TensorError::ZeroExtent { axis });
            }
        }
        for (axis, ((&o, &e), &d)) in
            self.origin.iter().zip(&self.extent).zip(dims).enumerate()
        {
            match o.checked_add(e) {
                Some(end) if end <= d => {}
                _ => {
                    return Err(TensorError::RegionOutOfBounds {
                        axis,
                        origin: o,
                        extent: e,
                        dim: d,
                    })
                }
            }
        }
        Ok(())
    }

    /// True when this (validated) region overlaps the block
    /// `block_origin .. block_origin + block_extent`.
    pub fn intersects(&self, block_origin: &[usize], block_extent: &[usize]) -> bool {
        debug_assert_eq!(block_origin.len(), self.origin.len());
        debug_assert_eq!(block_extent.len(), self.origin.len());
        self.origin
            .iter()
            .zip(&self.extent)
            .zip(block_origin.iter().zip(block_extent))
            .all(|((&o, &e), (&bo, &be))| o < bo + be && bo < o + e)
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, (&o, &e)) in self.origin.iter().zip(&self.extent).enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{o}:{e}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_regions_pass() {
        let dims = [8, 6, 4];
        Region::new(&[0, 0, 0], &[8, 6, 4]).validate(&dims).unwrap();
        Region::new(&[7, 5, 3], &[1, 1, 1]).validate(&dims).unwrap();
        Region::full(&dims).validate(&dims).unwrap();
    }

    #[test]
    fn rank_mismatch_rejected() {
        assert_eq!(
            Region::new(&[0, 0], &[1, 1, 1]).validate(&[4, 4]),
            Err(TensorError::RankMismatch { expected: 2, actual: 3 })
        );
        assert_eq!(
            Region::new(&[0, 0, 0], &[1, 1, 1]).validate(&[4, 4]),
            Err(TensorError::RankMismatch { expected: 2, actual: 3 })
        );
    }

    #[test]
    fn zero_extent_rejected() {
        assert_eq!(
            Region::new(&[0, 1], &[2, 0]).validate(&[4, 4]),
            Err(TensorError::ZeroExtent { axis: 1 })
        );
    }

    #[test]
    fn out_of_bounds_rejected() {
        assert_eq!(
            Region::new(&[3, 0], &[2, 4]).validate(&[4, 4]),
            Err(TensorError::RegionOutOfBounds { axis: 0, origin: 3, extent: 2, dim: 4 })
        );
        // origin + extent overflowing usize is out of bounds, not a panic.
        assert!(matches!(
            Region::new(&[usize::MAX, 0], &[2, 4]).validate(&[4, 4]),
            Err(TensorError::RegionOutOfBounds { axis: 0, .. })
        ));
    }

    #[test]
    fn intersection_is_half_open() {
        let r = Region::new(&[2, 2], &[2, 2]); // covers 2..4 × 2..4
        assert!(r.intersects(&[3, 3], &[4, 4]));
        assert!(r.intersects(&[0, 0], &[3, 3]));
        assert!(!r.intersects(&[4, 0], &[4, 4])); // touches at 4, no overlap
        assert!(!r.intersects(&[0, 4], &[4, 4]));
    }

    #[test]
    fn volume_and_display() {
        let r = Region::new(&[1, 2], &[3, 4]);
        assert_eq!(r.len(), 12);
        assert!(!r.is_empty());
        assert_eq!(r.to_string(), "[1:3,2:4]");
    }
}

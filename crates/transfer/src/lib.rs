//! End-to-end parallel data-transfer testbed (paper Sec. VI-E, Fig. 18).
//!
//! The paper moves the 635 GB RTM dataset between two clusters via Globus,
//! compressing the 3600 time slices embarrassingly parallel on up to 1800
//! cores. This crate reproduces the experiment's *pipeline arithmetic* on one
//! machine:
//!
//! * per-slice compression/decompression cost and compressed size are
//!   **measured** on real synthetic RTM slices (optionally in parallel with
//!   rayon to exercise the real code path),
//! * the WAN link is **modeled** at the paper's measured vanilla-Globus rate
//!   (461.75 MB/s — substitution documented in DESIGN.md §5), and the
//!   parallel filesystem at configurable read/write rates,
//! * strong scaling to `P` virtual cores schedules the `N` independent slice
//!   jobs in `⌈N/P⌉` waves.
//!
//! The paper's headline — QP's higher compression ratio shortens the
//! transfer/IO stages enough to win ~16 % end-to-end, shrinking to ~11 % at
//! 2× bandwidth — is a consequence of this arithmetic, which the model
//! preserves exactly.

#![warn(missing_docs)]

use qip_core::{Compressor, ErrorBound};
use qip_tensor::Field;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Wide-area link model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkModel {
    /// Sustained bandwidth in MB/s.
    pub bandwidth_mbs: f64,
}

impl LinkModel {
    /// The paper's measured vanilla Globus rate between MCC and Anvil.
    pub fn paper_globus() -> Self {
        LinkModel { bandwidth_mbs: 461.75 }
    }
}

/// Parallel filesystem model (aggregate rates).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FsModel {
    /// Aggregate write bandwidth in MB/s.
    pub write_mbs: f64,
    /// Aggregate read bandwidth in MB/s.
    pub read_mbs: f64,
}

impl Default for FsModel {
    fn default() -> Self {
        // Mid-size parallel filesystem (modeled; see DESIGN.md §5).
        FsModel { write_mbs: 1500.0, read_mbs: 2500.0 }
    }
}

/// Measured per-slice statistics feeding the pipeline model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SliceStats {
    /// Mean single-threaded compression time per slice (seconds).
    pub compress_s: f64,
    /// Mean single-threaded decompression time per slice (seconds).
    pub decompress_s: f64,
    /// Mean compressed bytes per slice.
    pub compressed_bytes: f64,
    /// Raw bytes per slice.
    pub raw_bytes: f64,
    /// Mean PSNR over the sampled slices (dB).
    pub psnr: f64,
}

impl SliceStats {
    /// Compression ratio implied by the measurements.
    pub fn cr(&self) -> f64 {
        self.raw_bytes / self.compressed_bytes
    }
}

/// One stage breakdown of the modeled pipeline (paper Fig. 18 bars).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TransferReport {
    /// Virtual core count of this strong-scaling point.
    pub cores: usize,
    /// Compression stage (seconds).
    pub compress_s: f64,
    /// Write-compressed-to-FS stage.
    pub write_s: f64,
    /// WAN transfer stage.
    pub transfer_s: f64,
    /// Read-compressed-from-FS stage.
    pub read_s: f64,
    /// Decompression stage.
    pub decompress_s: f64,
    /// End-to-end total.
    pub total_s: f64,
    /// Compression ratio used.
    pub cr: f64,
}

/// Measure per-slice statistics for `compressor` on the given sample slices.
///
/// Timing is single-threaded per slice (the unit the wave model schedules);
/// slices are processed with rayon so the measurement itself is fast, but
/// each sample's own clock only covers its own work.
pub fn measure_slice_stats<C>(
    compressor: &C,
    slices: &[Field<f32>],
    bound: ErrorBound,
) -> SliceStats
where
    C: Compressor<f32> + Sync,
{
    assert!(!slices.is_empty());
    let results: Vec<(f64, f64, usize, f64)> = slices
        .par_iter()
        .map(|slice| {
            let t0 = Instant::now();
            let bytes = compressor.compress(slice, bound).expect("compression failed");
            let t_c = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let out = compressor.decompress(&bytes).expect("decompression failed");
            let t_d = t1.elapsed().as_secs_f64();
            let psnr = qip_metrics::psnr(slice, &out);
            (t_c, t_d, bytes.len(), psnr)
        })
        .collect();
    let n = results.len() as f64;
    SliceStats {
        compress_s: results.iter().map(|r| r.0).sum::<f64>() / n,
        decompress_s: results.iter().map(|r| r.1).sum::<f64>() / n,
        compressed_bytes: results.iter().map(|r| r.2 as f64).sum::<f64>() / n,
        raw_bytes: (slices[0].len() * 4) as f64,
        psnr: results.iter().map(|r| r.3).sum::<f64>() / n,
    }
}

/// Strong-scaling pipeline model: schedule `n_slices` independent jobs on
/// `cores` workers in waves, then push the compressed volume through FS and
/// link.
pub fn model_pipeline(
    stats: &SliceStats,
    n_slices: usize,
    cores: usize,
    link: LinkModel,
    fs: FsModel,
) -> TransferReport {
    assert!(cores > 0 && n_slices > 0);
    let waves = n_slices.div_ceil(cores) as f64;
    let total_compressed_mb = stats.compressed_bytes * n_slices as f64 / 1e6;
    let compress_s = waves * stats.compress_s;
    let decompress_s = waves * stats.decompress_s;
    let write_s = total_compressed_mb / fs.write_mbs;
    let transfer_s = total_compressed_mb / link.bandwidth_mbs;
    let read_s = total_compressed_mb / fs.read_mbs;
    TransferReport {
        cores,
        compress_s,
        write_s,
        transfer_s,
        read_s,
        decompress_s,
        total_s: compress_s + write_s + transfer_s + read_s + decompress_s,
        cr: stats.cr(),
    }
}

/// Time to move the raw (uncompressed) dataset over the link — the vanilla
/// Globus baseline (paper: 23 min 29 s for 635 GB at 461.75 MB/s).
pub fn vanilla_transfer_s(raw_total_bytes: f64, link: LinkModel) -> f64 {
    raw_total_bytes / 1e6 / link.bandwidth_mbs
}

/// Compress all slices in parallel with rayon, returning the streams — the
/// real (non-modeled) parallel code path, used by examples and tests.
pub fn compress_slices_parallel<C>(
    compressor: &C,
    slices: &[Field<f32>],
    bound: ErrorBound,
) -> Vec<Vec<u8>>
where
    C: Compressor<f32> + Sync,
{
    slices
        .par_iter()
        .map(|s| compressor.compress(s, bound).expect("compression failed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qip_core::QpConfig;
    use qip_data::Dataset;
    use qip_sz3::Sz3;

    fn sample_slices(n: usize) -> Vec<Field<f32>> {
        (0..n)
            .map(|t| Dataset::Rtm.generate_f32(t * 100, &[24, 24, 16]))
            .collect()
    }

    #[test]
    fn measured_stats_sane() {
        let slices = sample_slices(3);
        let stats = measure_slice_stats(&Sz3::new(), &slices, ErrorBound::Rel(1e-3));
        assert!(stats.compress_s > 0.0);
        assert!(stats.decompress_s > 0.0);
        assert!(stats.compressed_bytes > 0.0);
        assert!(stats.cr() > 1.0, "CR {}", stats.cr());
        assert!(stats.psnr > 30.0, "PSNR {}", stats.psnr);
    }

    #[test]
    fn model_scales_with_cores() {
        let stats = SliceStats {
            compress_s: 1.0,
            decompress_s: 0.5,
            compressed_bytes: 1e7,
            raw_bytes: 2e8,
            psnr: 100.0,
        };
        let link = LinkModel::paper_globus();
        let fs = FsModel::default();
        let r225 = model_pipeline(&stats, 3600, 225, link, fs);
        let r450 = model_pipeline(&stats, 3600, 450, link, fs);
        let r1800 = model_pipeline(&stats, 3600, 1800, link, fs);
        // Compute stages halve with doubled cores; IO stages stay fixed.
        assert!((r225.compress_s / r450.compress_s - 2.0).abs() < 1e-9);
        assert_eq!(r225.transfer_s, r1800.transfer_s);
        assert!(r225.total_s > r450.total_s && r450.total_s > r1800.total_s);
    }

    #[test]
    fn higher_cr_shortens_io_stages() {
        let mk = |bytes: f64| SliceStats {
            compress_s: 1.0,
            decompress_s: 0.5,
            compressed_bytes: bytes,
            raw_bytes: 2e8,
            psnr: 100.0,
        };
        let link = LinkModel::paper_globus();
        let fs = FsModel::default();
        let plain = model_pipeline(&mk(1e7), 3600, 900, link, fs);
        let qp = model_pipeline(&mk(8.6e6), 3600, 900, link, fs); // CR ×1.163
        assert!(qp.transfer_s < plain.transfer_s);
        assert!(qp.total_s < plain.total_s);
    }

    #[test]
    fn doubling_bandwidth_shrinks_qp_gain() {
        // The paper's own caveat: at 2× link bandwidth the QP end-to-end gain
        // drops (16 % → ~11 %). The model must reproduce that direction.
        let mk = |bytes: f64| SliceStats {
            compress_s: 0.8,
            decompress_s: 0.4,
            compressed_bytes: bytes,
            raw_bytes: 2e8,
            psnr: 100.0,
        };
        let fs = FsModel::default();
        let gain = |bw: f64| {
            let link = LinkModel { bandwidth_mbs: bw };
            let plain = model_pipeline(&mk(9.3e6), 3600, 900, link, fs);
            let qp = model_pipeline(&mk(8.0e6), 3600, 900, link, fs);
            plain.total_s / qp.total_s
        };
        assert!(gain(461.75) > gain(2.0 * 461.75));
    }

    #[test]
    fn vanilla_time_matches_paper_arithmetic() {
        // 635.54 GB at 461.75 MB/s ≈ 23.5 minutes.
        let t = vanilla_transfer_s(635.54e9, LinkModel::paper_globus());
        assert!((t / 60.0 - 23.5).abs() < 0.6, "got {} min", t / 60.0);
    }

    #[test]
    fn parallel_compression_matches_serial() {
        let slices = sample_slices(4);
        let sz3 = Sz3::new().with_qp(QpConfig::best_fit());
        let par = compress_slices_parallel(&sz3, &slices, ErrorBound::Rel(1e-3));
        for (s, bytes) in slices.iter().zip(&par) {
            let serial = sz3.compress(s, ErrorBound::Rel(1e-3)).unwrap();
            assert_eq!(&serial, bytes, "parallel compression must be deterministic");
        }
    }
}

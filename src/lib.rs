//! # QIP — Adaptive Quantization Index Prediction for scientific lossy compressors
//!
//! Facade crate re-exporting the whole workspace. See the README for a tour and
//! `DESIGN.md` for the system inventory; the per-crate docs carry the details.
//!
//! Quick taste (see `examples/quickstart.rs` for the full version):
//!
//! ```
//! use qip::prelude::*;
//!
//! let field = qip::data::miranda_like(0, &[32, 32, 32]);
//! let sz3 = qip::sz3::Sz3::default().with_qp(QpConfig::best_fit());
//! let bytes = sz3.compress(&field, ErrorBound::Abs(1e-3)).unwrap();
//! let restored: Field<f32> = sz3.decompress(&bytes).unwrap();
//! assert!(qip::metrics::max_abs_error(&field, &restored) <= 1e-3 + 1e-9);
//! ```

#![warn(missing_docs)]

pub use qip_codec as codec;
pub use qip_container as container;
pub use qip_core as core;
pub use qip_data as data;
pub use qip_hpez as hpez;
pub use qip_inspect as inspect;
pub use qip_interp as interp;
pub use qip_metrics as metrics;
pub use qip_mgard as mgard;
pub use qip_parallel as parallel;
pub use qip_predict as predict;
pub use qip_qoz as qoz;
pub use qip_quant as quant;
pub use qip_registry as registry;
pub use qip_serve as serve;
pub use qip_sperr as sperr;
pub use qip_sz3 as sz3;
pub use qip_telemetry as telemetry;
pub use qip_tensor as tensor;
pub use qip_transfer as transfer;
pub use qip_tthresh as tthresh;
pub use qip_zfp as zfp;

/// Common imports for downstream users: field container, error bound, the
/// compressor trait (plus the region/progressive capability traits), and the
/// QP configuration type.
pub mod prelude {
    pub use qip_core::{
        Compressor, ErrorBound, ProgressiveDecompress, QpConfig, RegionDecompress,
    };
    pub use qip_tensor::{Field, Region, Scalar, Shape};
}

//! `qip` — command-line error-bounded compression for raw binary fields.
//!
//! ```text
//! qip compress   -i data.f32 -d 256x384x384 -m sz3 --eb rel:1e-3 [--qp] [--f64] -o data.qip
//! qip decompress -i data.qip -o restored.f32 [--f64]
//! qip info       -i data.qip
//! qip inspect    -i data.qip [--original data.f32 -d 256x384x384] [--json report.json]
//! qip gen        --dataset miranda -d 64x96x96 [--field 0] -o data.f32
//! qip serve      [--listen 127.0.0.1:9314] [--workers N] [--queue N] [--duration-s S]
//! ```
//!
//! Raw files are little-endian f32 (or f64 with `--f64`), row-major, matching
//! the SZ3 command-line conventions. Decompression auto-detects the
//! compressor from the stream magic.

use qip::prelude::*;
use qip::registry::AnyCompressor;
use std::collections::HashMap;
use std::process::ExitCode;

fn parse_dims(s: &str) -> Result<Vec<usize>, String> {
    let dims: Result<Vec<usize>, _> = s.split(['x', 'X', ',']).map(|p| p.parse()).collect();
    let dims = dims.map_err(|e| format!("bad dims '{s}': {e}"))?;
    if dims.is_empty() || dims.len() > 4 {
        return Err(
            "dims must have 1-4 axes (4-D works with sz3/qoz/hpez/mgard only)".into()
        );
    }
    if dims.contains(&0) {
        return Err(format!("bad dims '{s}': every axis must be nonzero"));
    }
    Ok(dims)
}

fn parse_eb(s: &str) -> Result<ErrorBound, String> {
    if let Some(v) = s.strip_prefix("rel:") {
        return v.parse().map(ErrorBound::Rel).map_err(|e| format!("bad bound: {e}"));
    }
    if let Some(v) = s.strip_prefix("abs:") {
        return v.parse().map(ErrorBound::Abs).map_err(|e| format!("bad bound: {e}"));
    }
    Err("error bound must be rel:<v> or abs:<v>".into())
}

/// One constructor for both scalar types: `AnyCompressor` implements
/// `Compressor<f32>` and `Compressor<f64>`, so the registry lookup replaces
/// the two per-type tables this binary used to carry. Lookup failures render
/// the registry's typed [`qip::registry::LookupError`], which lists the
/// canonical names.
fn compressor_by_name(name: &str, qp: bool) -> Result<AnyCompressor, String> {
    let canonical = if qp { format!("{name}+qp") } else { name.to_string() };
    AnyCompressor::by_name(&canonical).map_err(|e| e.to_string())
}

/// Parse `--region o:e,o:e,...` — per-axis `origin:extent` pairs.
fn parse_region(s: &str) -> Result<qip::tensor::Region, String> {
    let mut origin = Vec::new();
    let mut extent = Vec::new();
    for part in s.split(',') {
        let (o, e) = part
            .split_once(':')
            .ok_or_else(|| format!("bad region '{s}': each axis must be origin:extent"))?;
        origin.push(o.parse::<usize>().map_err(|e| format!("bad region origin '{o}': {e}"))?);
        extent.push(e.parse::<usize>().map_err(|er| format!("bad region extent '{e}': {er}"))?);
    }
    if origin.is_empty() || origin.len() > 4 {
        return Err(format!("bad region '{s}': 1-4 axes"));
    }
    Ok(qip::tensor::Region::new(&origin, &extent))
}

/// Observability outputs requested on the command line.
struct CliObs<'a> {
    /// `--trace FILE`: span/counter report as JSON (needs the trace feature).
    trace_path: Option<&'a String>,
    /// `--flame FILE`: the same report as collapsed stacks for flamegraph
    /// tooling (needs the trace feature).
    flame_path: Option<&'a String>,
    /// `--stats`: render the report to stderr.
    stats: bool,
    /// `--metrics-out FILE`: telemetry JSON snapshot (always available).
    metrics_out: Option<&'a String>,
    /// `--prom FILE`: telemetry in Prometheus text exposition format.
    prom_path: Option<&'a String>,
    /// `--flight FILE`: flight-recorder dump as JSON Lines.
    flight_path: Option<&'a String>,
}

impl<'a> CliObs<'a> {
    fn from_cli(opts: &'a HashMap<String, String>, flags: &[String]) -> CliObs<'a> {
        CliObs {
            trace_path: opts.get("trace"),
            flame_path: opts.get("flame"),
            stats: flags.iter().any(|f| f == "stats"),
            metrics_out: opts.get("metrics-out"),
            prom_path: opts.get("prom"),
            flight_path: opts.get("flight"),
        }
    }

    fn wants_trace(&self) -> bool {
        self.trace_path.is_some() || self.flame_path.is_some() || self.stats
    }

    fn wants_telemetry(&self) -> bool {
        self.metrics_out.is_some() || self.prom_path.is_some() || self.flight_path.is_some()
    }
}

/// Run `f` with whatever observability the flags ask for: a qip-trace session
/// (`--trace`/`--flame`/`--stats`, compile-gated) and/or an attached
/// qip-telemetry hub (`--metrics-out`/`--prom`/`--flight`, always available).
/// Without any of those options `f` runs bare and pays only the dormant
/// relaxed-load checks.
fn with_cli_obs<R>(obs: CliObs, f: impl FnOnce() -> Result<R, String>) -> Result<R, String> {
    let hub = if obs.wants_telemetry() {
        let hub = std::sync::Arc::new(qip::telemetry::MetricsHub::new());
        qip::telemetry::attach(std::sync::Arc::clone(&hub));
        Some(hub)
    } else {
        None
    };

    let result = if obs.wants_trace() {
        if !qip_trace::compiled() {
            eprintln!(
                "warning: --trace/--flame/--stats need the `trace` cargo feature; \
                 rebuild with `cargo build --release --features trace` (report will be empty)"
            );
        }
        let (result, report) = qip_trace::with_session(f);
        if let Some(path) = obs.trace_path {
            std::fs::write(path, report.to_json()).map_err(|e| format!("write {path}: {e}"))?;
        }
        if let Some(path) = obs.flame_path {
            std::fs::write(path, qip::telemetry::flame::collapsed_stacks(&report))
                .map_err(|e| format!("write {path}: {e}"))?;
        }
        if obs.stats {
            eprintln!("{}", report.render());
        }
        result
    } else {
        f()
    };

    if let Some(hub) = hub {
        qip::telemetry::detach();
        if let Some(path) = obs.metrics_out {
            std::fs::write(path, qip::telemetry::export::json_snapshot(&hub))
                .map_err(|e| format!("write {path}: {e}"))?;
        }
        if let Some(path) = obs.prom_path {
            std::fs::write(path, qip::telemetry::export::prometheus_text(&hub))
                .map_err(|e| format!("write {path}: {e}"))?;
        }
        if let Some(path) = obs.flight_path {
            std::fs::write(path, hub.recorder.dump_jsonl())
                .map_err(|e| format!("write {path}: {e}"))?;
        }
    }
    result
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().ok_or_else(usage)?;
    let mut opts: HashMap<String, String> = HashMap::new();
    let mut flags: Vec<String> = Vec::new();
    let mut key: Option<String> = None;
    for a in args {
        if let Some(k) = key.take() {
            opts.insert(k, a);
        } else if let Some(f) = a.strip_prefix("--") {
            if matches!(f, "qp" | "f64" | "stats") {
                flags.push(f.into());
            } else {
                key = Some(f.into());
            }
        } else if let Some(f) = a.strip_prefix('-') {
            key = Some(f.into());
        } else {
            return Err(format!("unexpected argument '{a}'"));
        }
    }
    if key.is_some() {
        return Err("dangling option".into());
    }
    let need = |k: &str| -> Result<&String, String> {
        opts.get(k).ok_or(format!("missing required option -{k}"))
    };
    let is_f64 = flags.iter().any(|f| f == "f64");

    // Global kernel switch: `--kernel scalar|chunked` selects the interp/quant
    // kernel implementation for this process (default chunked; see
    // docs/kernels.md). Applies to every subcommand that touches a codec.
    if let Some(k) = opts.get("kernel") {
        let mode = qip::interp::KernelMode::parse(k)
            .ok_or_else(|| format!("bad --kernel '{k}': expected scalar or chunked"))?;
        qip::interp::set_kernel_mode(mode);
    }

    match cmd.as_str() {
        "compress" => {
            let input = need("i")?;
            let output = need("o")?;
            let dims = parse_dims(need("d")?)?;
            let method = opts.get("m").map(String::as_str).unwrap_or("sz3");
            let bound = parse_eb(opts.get("eb").map(String::as_str).unwrap_or("rel:1e-3"))?;
            let qp = flags.iter().any(|f| f == "qp");
            let raw = std::fs::read(input).map_err(|e| format!("read {input}: {e}"))?;
            let shape = Shape::new(&dims);

            let comp = compressor_by_name(method, qp)?;
            let (bytes, name, n) =
                with_cli_obs(CliObs::from_cli(&opts, &flags), || {
                    if is_f64 {
                        let field = Field::<f64>::from_le_bytes(shape, &raw)
                            .map_err(|e| format!("{input}: {e}"))?;
                        let bytes = comp.compress(&field, bound).map_err(|e| e.to_string())?;
                        Ok((bytes, Compressor::<f64>::name(&comp), field.len() * 8))
                    } else {
                        let field = Field::<f32>::from_le_bytes(shape, &raw)
                            .map_err(|e| format!("{input}: {e}"))?;
                        let bytes = comp.compress(&field, bound).map_err(|e| e.to_string())?;
                        Ok((bytes, Compressor::<f32>::name(&comp), field.len() * 4))
                    }
                })?;
            std::fs::write(output, &bytes).map_err(|e| format!("write {output}: {e}"))?;
            eprintln!(
                "{name}: {} -> {} bytes (CR {:.2})",
                n,
                bytes.len(),
                n as f64 / bytes.len() as f64
            );
            Ok(())
        }
        "decompress" => {
            let input = need("i")?;
            let output = need("o")?;
            let bytes = std::fs::read(input).map_err(|e| format!("read {input}: {e}"))?;
            let method =
                qip::registry::detect_stream(&bytes).ok_or("unrecognized stream magic")?;
            if method == "block-parallel" {
                return Err(
                    "block-parallel streams need the wrapping API (qip_parallel::BlockParallel); \
                     this CLI decodes single-compressor streams"
                        .into(),
                );
            }
            let out =
                with_cli_obs(CliObs::from_cli(&opts, &flags), || {
                    if method == "tiled" {
                        // Containers are self-describing; no registry lookup.
                        if is_f64 {
                            let field: Field<f64> = qip::container::decompress_full(&bytes)
                                .map_err(|e| e.to_string())?;
                            Ok(field.to_le_bytes())
                        } else {
                            let field: Field<f32> = qip::container::decompress_full(&bytes)
                                .map_err(|e| e.to_string())?;
                            Ok(field.to_le_bytes())
                        }
                    } else {
                        let comp = compressor_by_name(method, false)?;
                        if is_f64 {
                            let field: Field<f64> =
                                comp.decompress(&bytes).map_err(|e| e.to_string())?;
                            Ok(field.to_le_bytes())
                        } else {
                            let field: Field<f32> =
                                comp.decompress(&bytes).map_err(|e| e.to_string())?;
                            Ok(field.to_le_bytes())
                        }
                    }
                })?;
            std::fs::write(output, &out).map_err(|e| format!("write {output}: {e}"))?;
            eprintln!("{method}: {} -> {} bytes", bytes.len(), out.len());
            Ok(())
        }
        "info" => {
            let input = need("i")?;
            let bytes = std::fs::read(input).map_err(|e| format!("read {input}: {e}"))?;
            let method =
                qip::registry::detect_stream(&bytes).ok_or("unrecognized stream magic")?;
            println!("compressor: {method}");
            println!("stream bytes: {}", bytes.len());
            if method == "tiled" {
                let (info, _) = qip::container::ContainerInfo::parse(&bytes)
                    .map_err(|e| e.to_string())?;
                println!("tile compressor: {}", info.compressor);
                println!("dims: {:?}", info.dims);
                println!("tile edge: {}", info.tile);
                println!("tiles: {}", info.tiles.len());
                println!("abs bound: {}", info.abs_bound);
                println!("scalar bits: {}", info.bits);
                // Per-tile ledger rollup: every byte of the container attributed
                // to a component, aggregated across tiles (see qip-inspect).
                let report =
                    qip::inspect::inspect_bytes(&bytes).map_err(|e| e.to_string())?;
                if let Some(t) = &report.tiles {
                    println!(
                        "tile bytes min/median/max: {} / {} / {}",
                        t.min_tile_bytes, t.median_tile_bytes, t.max_tile_bytes
                    );
                    for (name, tiles, total) in &t.by_compressor {
                        println!("  {name}: {tiles} tiles, {total} bytes");
                    }
                }
                println!("ledger ({} bytes accounted):", report.ledger_total());
                for e in &report.ledger {
                    println!("  {:<18} {:>10}", e.component, e.bytes);
                }
            }
            Ok(())
        }
        "inspect" => {
            // Decode-time stream forensics: exact bit-accounting ledger, QP
            // decision maps, and (with --original) error-budget analytics.
            let input = need("i")?;
            let bytes = std::fs::read(input).map_err(|e| format!("read {input}: {e}"))?;
            let report = with_cli_obs(CliObs::from_cli(&opts, &flags), || {
                match opts.get("original") {
                    Some(orig) => {
                        let dims = parse_dims(need("d")?)?;
                        let raw =
                            std::fs::read(orig).map_err(|e| format!("read {orig}: {e}"))?;
                        let shape = Shape::new(&dims);
                        if is_f64 {
                            let field = Field::<f64>::from_le_bytes(shape, &raw)
                                .map_err(|e| format!("{orig}: {e}"))?;
                            qip::inspect::inspect_bytes_with_original(&bytes, &field)
                                .map_err(|e| e.to_string())
                        } else {
                            let field = Field::<f32>::from_le_bytes(shape, &raw)
                                .map_err(|e| format!("{orig}: {e}"))?;
                            qip::inspect::inspect_bytes_with_original(&bytes, &field)
                                .map_err(|e| e.to_string())
                        }
                    }
                    None => qip::inspect::inspect_bytes(&bytes).map_err(|e| e.to_string()),
                }
            })?;
            if let Some(path) = opts.get("json") {
                std::fs::write(path, report.to_json())
                    .map_err(|e| format!("write {path}: {e}"))?;
                eprintln!("[report written to {path}]");
            }
            println!("{}", report.render_table());
            Ok(())
        }
        "tile" => {
            // Compress into a tiled container: random-access region reads and
            // (for MGARD tiles) progressive decode via `qip read`.
            let input = need("i")?;
            let output = need("o")?;
            let dims = parse_dims(need("d")?)?;
            let method = opts.get("m").map(String::as_str).unwrap_or("sz3");
            let tile: usize = match opts.get("tile") {
                Some(v) => v.parse().map_err(|e| format!("bad --tile '{v}': {e}"))?,
                None => 64,
            };
            let bound = parse_eb(opts.get("eb").map(String::as_str).unwrap_or("rel:1e-3"))?;
            let qp = flags.iter().any(|f| f == "qp");
            let raw = std::fs::read(input).map_err(|e| format!("read {input}: {e}"))?;
            let shape = Shape::new(&dims);

            let inner = compressor_by_name(method, qp)?;
            let tc = qip::container::TiledCompressor::new(inner, tile)
                .map_err(|e| e.to_string())?;
            let (bytes, name, n) =
                with_cli_obs(CliObs::from_cli(&opts, &flags), || {
                    if is_f64 {
                        let field = Field::<f64>::from_le_bytes(shape, &raw)
                            .map_err(|e| format!("{input}: {e}"))?;
                        let bytes = tc.compress(&field, bound).map_err(|e| e.to_string())?;
                        Ok((bytes, Compressor::<f64>::name(&tc), field.len() * 8))
                    } else {
                        let field = Field::<f32>::from_le_bytes(shape, &raw)
                            .map_err(|e| format!("{input}: {e}"))?;
                        let bytes = tc.compress(&field, bound).map_err(|e| e.to_string())?;
                        Ok((bytes, Compressor::<f32>::name(&tc), field.len() * 4))
                    }
                })?;
            std::fs::write(output, &bytes).map_err(|e| format!("write {output}: {e}"))?;
            eprintln!(
                "{name}: {} -> {} bytes (CR {:.2})",
                n,
                bytes.len(),
                n as f64 / bytes.len() as f64
            );
            Ok(())
        }
        "read" => {
            // Random-access read from a tiled container: a region decodes only
            // the tiles it intersects; --coarse L decodes the whole field on
            // the stride-2^L lattice (MGARD tiles).
            let input = need("i")?;
            let output = need("o")?;
            let bytes = std::fs::read(input).map_err(|e| format!("read {input}: {e}"))?;
            let region = opts.get("region").map(|s| parse_region(s)).transpose()?;
            let coarse: Option<usize> = opts
                .get("coarse")
                .map(|v| v.parse().map_err(|e| format!("bad --coarse '{v}': {e}")))
                .transpose()?;
            if region.is_some() && coarse.is_some() {
                return Err("--region and --coarse are mutually exclusive".into());
            }
            let out = with_cli_obs(CliObs::from_cli(&opts, &flags), || {
                match (&region, coarse) {
                    (Some(r), None) => {
                        if is_f64 {
                            let field: Field<f64> = qip::container::read_region(&bytes, r)
                                .map_err(|e| e.to_string())?;
                            Ok(field.to_le_bytes())
                        } else {
                            let field: Field<f32> = qip::container::read_region(&bytes, r)
                                .map_err(|e| e.to_string())?;
                            Ok(field.to_le_bytes())
                        }
                    }
                    (None, Some(level)) => {
                        if is_f64 {
                            let field: Field<f64> =
                                qip::container::decompress_reduced(&bytes, level)
                                    .map_err(|e| e.to_string())?;
                            Ok(field.to_le_bytes())
                        } else {
                            let field: Field<f32> =
                                qip::container::decompress_reduced(&bytes, level)
                                    .map_err(|e| e.to_string())?;
                            Ok(field.to_le_bytes())
                        }
                    }
                    (None, None) => {
                        if is_f64 {
                            let field: Field<f64> = qip::container::decompress_full(&bytes)
                                .map_err(|e| e.to_string())?;
                            Ok(field.to_le_bytes())
                        } else {
                            let field: Field<f32> = qip::container::decompress_full(&bytes)
                                .map_err(|e| e.to_string())?;
                            Ok(field.to_le_bytes())
                        }
                    }
                    (Some(_), Some(_)) => unreachable!("rejected above"),
                }
            })?;
            std::fs::write(output, &out).map_err(|e| format!("write {output}: {e}"))?;
            match (&region, coarse) {
                (Some(r), _) => eprintln!("region {r}: {} bytes", out.len()),
                (_, Some(l)) => eprintln!("coarse level {l}: {} bytes", out.len()),
                _ => eprintln!("full field: {} bytes", out.len()),
            }
            Ok(())
        }
        "gen" => {
            let output = need("o")?;
            let dims = parse_dims(need("d")?)?;
            let dataset = opts.get("dataset").map(String::as_str).unwrap_or("miranda");
            let field_idx: usize =
                opts.get("field").map(|v| v.parse().unwrap_or(0)).unwrap_or(0);
            use qip::data::Dataset;
            let ds = match dataset.to_ascii_lowercase().as_str() {
                "miranda" => Dataset::Miranda,
                "hurricane" => Dataset::Hurricane,
                "segsalt" => Dataset::SegSalt,
                "scale" => Dataset::Scale,
                "s3d" => Dataset::S3d,
                "cesm" => Dataset::Cesm,
                "rtm" => Dataset::Rtm,
                other => return Err(format!("unknown dataset '{other}'")),
            };
            let out = if is_f64 {
                ds.generate_f64(field_idx, &dims).to_le_bytes()
            } else {
                ds.generate_f32(field_idx, &dims).to_le_bytes()
            };
            std::fs::write(output, &out).map_err(|e| format!("write {output}: {e}"))?;
            eprintln!("{dataset} field {field_idx} {dims:?}: {} bytes", out.len());
            Ok(())
        }
        "serve" => {
            let parse_num = |k: &str, default: usize| -> Result<usize, String> {
                match opts.get(k) {
                    Some(v) => v.parse().map_err(|e| format!("bad --{k} '{v}': {e}")),
                    None => Ok(default),
                }
            };
            let defaults = qip::serve::ServeConfig::default();
            let config = qip::serve::ServeConfig {
                addr: opts
                    .get("listen")
                    .cloned()
                    .unwrap_or_else(|| "127.0.0.1:9314".into()),
                workers: parse_num("workers", defaults.workers)?,
                queue_depth: parse_num("queue", defaults.queue_depth)?,
                max_conns: parse_num("max-conns", defaults.max_conns)?,
                default_deadline: std::time::Duration::from_millis(
                    parse_num("deadline-ms", defaults.default_deadline.as_millis() as usize)?
                        as u64,
                ),
                ..defaults
            };
            let duration_s = match opts.get("duration-s") {
                Some(v) => {
                    Some(v.parse::<u64>().map_err(|e| format!("bad --duration-s '{v}': {e}"))?)
                }
                None => None,
            };

            // Attach a metrics hub so the wire `metrics` op serves real data
            // (queue depth, shed/deadline/panic counters, latency histograms),
            // with the default availability/latency SLOs and the always-on
            // tail sampler feeding the `flight` op and `--tails`.
            let hub = std::sync::Arc::new(qip::telemetry::MetricsHub::with_slo(
                qip::telemetry::slo::default_objectives(),
                1.0,
            ));
            qip::telemetry::attach(std::sync::Arc::clone(&hub));

            let handle =
                qip::serve::Server::start(config).map_err(|e| format!("serve: {e}"))?;
            eprintln!(
                "qip-serve listening on {} ({} workers, queue depth {})",
                handle.addr(),
                parse_num("workers", defaults.workers)?,
                parse_num("queue", defaults.queue_depth)?,
            );
            match duration_s {
                Some(secs) => {
                    // Timed run: serve for the window, then drain gracefully
                    // (in-flight requests finish, new connections refused).
                    std::thread::sleep(std::time::Duration::from_secs(secs));
                    eprintln!("qip-serve: draining after {secs}s");
                    let events = handle.events_jsonl();
                    let stats = handle.join();
                    use std::sync::atomic::Ordering;
                    eprintln!(
                        "qip-serve: {} requests ({} ok, {} shed, {} deadline misses, {} panics isolated), {} connections",
                        stats.requests.load(Ordering::SeqCst),
                        stats.ok.load(Ordering::SeqCst),
                        stats.shed.load(Ordering::SeqCst),
                        stats.deadline_miss.load(Ordering::SeqCst),
                        stats.panics.load(Ordering::SeqCst),
                        stats.conns_accepted.load(Ordering::SeqCst),
                    );
                    if let Some(path) = opts.get("prom") {
                        hub.slo.publish(&hub);
                        std::fs::write(path, qip::telemetry::export::prometheus_text(&hub))
                            .map_err(|e| format!("write {path}: {e}"))?;
                    }
                    if let Some(path) = opts.get("tails") {
                        std::fs::write(path, hub.tail.dump_jsonl())
                            .map_err(|e| format!("write {path}: {e}"))?;
                    }
                    if let Some(path) = opts.get("events") {
                        std::fs::write(path, events)
                            .map_err(|e| format!("write {path}: {e}"))?;
                    }
                    Ok(())
                }
                None => {
                    // Run until killed; the handle keeps the server alive.
                    loop {
                        std::thread::park();
                    }
                }
            }
        }
        _ => Err(usage()),
    }
}

fn usage() -> String {
    "usage:\n  \
     qip compress   -i IN -o OUT -d NxNxN [-m sz3|qoz|hpez|mgard|zfp|sperr|tthresh] [--eb rel:1e-3|abs:0.5] [--qp] [--f64] [OBSERVABILITY]\n  \
     qip decompress -i IN -o OUT [--f64] [OBSERVABILITY]\n  \
     qip tile       -i IN -o OUT -d NxNxN [-m NAME] [--tile 64] [--eb rel:1e-3] [--qp] [--f64]   (tiled container, random access)\n  \
     qip read       -i IN.qip -o OUT [--region o:e,o:e,...] [--coarse L] [--f64]   (region = only intersecting tiles decode)\n  \
     qip info       -i IN   (tiled containers also print the per-tile ledger rollup)\n  \
     qip inspect    -i IN [--original RAW -d NxNxN [--f64]] [--json R.json] [OBSERVABILITY]\n                 \
     (stream forensics: exact byte ledger, QP decision maps, error budget; see docs/observability.md)\n  \
     qip gen        -o OUT -d NxNxN [--dataset miranda|hurricane|segsalt|scale|s3d|cesm|rtm] [--field K] [--f64]\n  \
     qip serve      [--listen ADDR] [--workers N] [--queue N] [--max-conns N] [--deadline-ms MS]\n                 \
     [--duration-s S] [--prom M.prom] [--tails T.jsonl] [--events E.jsonl]\n                 \
     (see docs/serving.md; FORMAT.md for the wire protocol; --tails dumps the\n                 \
     tail-sampler reservoir and --events the per-request event log at drain)\n\n\
     Every subcommand accepts --kernel scalar|chunked to pick the codec kernel\n     \
     implementation for the process (default chunked; see docs/kernels.md).\n\n\
     OBSERVABILITY (compress/decompress/inspect):\n  \
     --metrics-out M.json   telemetry snapshot (counters, gauges, latency histograms) as JSON\n  \
     --prom M.prom          the same snapshot in Prometheus text exposition format\n  \
     --flight F.jsonl       flight-recorder dump, one JSON record per compress/decompress call\n  \
     --trace T.json         span/counter report as JSON (needs the `trace` cargo feature)\n  \
     --flame F.folded       span tree as collapsed stacks for flamegraph tools (needs `trace`)\n  \
     --stats                render the span report to stderr (needs `trace`)"
        .into()
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
